// Package sim is the drive-test simulator: it advances a UE along a route
// at the paper's 20 Hz logging rate, computes per-cell signal strength
// through the propagation model, runs the UE measurement engine and the
// serving cell's decision engine, executes handovers with their T1/T2
// stages, and emits the cross-layer trace.Log every analysis consumes.
//
// The simulator realises the NSA coupling the paper dissects: an LTE anchor
// handover (MNBH) forcibly releases the 5G leg (SCGR) because NSA cannot
// keep an SCG across anchors (§6.1), and inter-gNB moves become SCG Change
// procedures rather than direct handovers (§6.2).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/policygen"
	"repro/internal/ran"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config describes one simulated drive.
type Config struct {
	// Carrier is the operator profile whose deployment and policies the
	// drive runs under (§3's OpX/OpY).
	Carrier topology.CarrierProfile
	// Arch selects LTE, NSA or SA operation (§2.1).
	Arch cellular.Arch
	// RouteKind / RouteLengthM choose the synthetic route (metres;
	// perimeter for loops), and Laps > 1 repeats a loop (the paper's
	// walking-loop collection runs).
	RouteKind    geo.RouteKind
	RouteLengthM float64
	Laps         int
	// SpeedMPS is the travel speed.
	SpeedMPS float64
	// BearerMode selects NSA traffic splitting; ignored for LTE/SA.
	BearerMode throughput.BearerMode
	// Seed drives all randomness; equal seeds give identical drives.
	Seed int64
	// Tracer, when set, receives one structured obs.EvHOTrigger event per
	// scheduled handover (type, source/target cell, MR ordinal, sim time)
	// — the same event stream the serving daemon exposes at /events, so
	// paper-figure debugging can replay a drive's mobility decisions
	// without diffing whole trace logs. Nil disables tracing; the tracer
	// never influences the simulation (trace.Log output is byte-identical
	// with or without it).
	Tracer *obs.Tracer
	// Scenario, when set, runs the drive under a policy-as-data scenario:
	// the base portfolio's event tables and decision logic replace the
	// named-carrier lookup, and each Drift rewrites the active policy at
	// its sim time mid-run (the carrier reconfigures while the drive — and
	// any attached learner — is underway). The deployment still comes from
	// Carrier; drift changes policy, not towers. Nil keeps the historical
	// named-carrier path bit-identical.
	Scenario *policygen.Scenario
	// TopoOpts tunes deployment generation.
	TopoOpts topology.Options
	// SampleEveryN stores every Nth 20 Hz sample (default 1 = all). The
	// simulation itself always runs at full rate.
	SampleEveryN int
	// Adaptive, when set with at least one control enabled, closes the
	// prediction loop: the drive embeds an online Prognos instance fed the
	// same report/handover/sample stream core.Replay would deliver, and its
	// per-tick forecasts steer the live policy through a
	// ran.AdaptiveController (early-prep, skip-ahead, TTT/hysteresis
	// adaptation — see docs/ARCHITECTURE.md §Closed loop). Nil or all-off
	// keeps the drive bit-identical to the static policy, which the golden
	// trace tests pin.
	Adaptive *ran.AdaptiveConfig
}

func (c Config) withDefaults() Config {
	if c.RouteLengthM == 0 {
		c.RouteLengthM = 20000
	}
	if c.SpeedMPS == 0 {
		c.SpeedMPS = 29 // ≈105 km/h
	}
	if c.Laps < 1 {
		c.Laps = 1
	}
	if c.SampleEveryN < 1 {
		c.SampleEveryN = 1
	}
	return c
}

// maxRangeM bounds the cell search radius per band.
func maxRangeM(band cellular.Band) float64 {
	switch band {
	case cellular.BandLow:
		return 9000
	case cellular.BandMid:
		return 5000
	case cellular.BandMMWave:
		return 800
	default:
		return 6000
	}
}

// Run simulates one drive and returns its trace.
func Run(cfg Config) (*trace.Log, error) {
	cfg = cfg.withDefaults()
	if !cfg.Carrier.Has(cfg.Arch) {
		return nil, fmt.Errorf("sim: carrier %s does not offer %s", cfg.Carrier.Name, cfg.Arch)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	route := geo.Generate(cfg.RouteKind, rng, cfg.RouteLengthM)
	dep := topology.Generate(cfg.Carrier, route, rng, cfg.TopoOpts)
	s := newState(cfg, route, dep, rng)
	s.run()
	return s.log, nil
}

// RunOn simulates a drive over a pre-built deployment (several drives can
// share one city's topology, like the paper's repeated loops).
func RunOn(cfg Config, dep *topology.Deployment, seed int64) (*trace.Log, error) {
	cfg = cfg.withDefaults()
	if !cfg.Carrier.Has(cfg.Arch) {
		return nil, fmt.Errorf("sim: carrier %s does not offer %s", cfg.Carrier.Name, cfg.Arch)
	}
	rng := rand.New(rand.NewSource(seed))
	s := newState(cfg, dep.Route, dep, rng)
	s.run()
	return s.log, nil
}

// ClosedLoop is the by-product of an adaptive drive: the in-loop prediction
// series (the forecasts the controller actually acted on, on the same 20 Hz
// grid core.Replay produces) and the controller's action counters. Both are
// nil/zero when Config.Adaptive was not enabled.
type ClosedLoop struct {
	Ticks []core.TickPrediction
	Stats ran.AdaptiveStats
}

// RunClosedLoop simulates one drive like Run and additionally returns the
// closed-loop by-product. The trace bytes are identical to what Run would
// produce for the same Config — the extra return only exposes what the
// embedded predictor and controller did along the way.
func RunClosedLoop(cfg Config) (*trace.Log, *ClosedLoop, error) {
	cfg = cfg.withDefaults()
	if !cfg.Carrier.Has(cfg.Arch) {
		return nil, nil, fmt.Errorf("sim: carrier %s does not offer %s", cfg.Carrier.Name, cfg.Arch)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	route := geo.Generate(cfg.RouteKind, rng, cfg.RouteLengthM)
	dep := topology.Generate(cfg.Carrier, route, rng, cfg.TopoOpts)
	s := newState(cfg, route, dep, rng)
	s.run()
	cl := &ClosedLoop{}
	if s.actrl != nil {
		cl.Ticks = s.loopTicks
		cl.Stats = s.actrl.Stats()
	}
	return s.log, cl, nil
}
