package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/topology"
)

func freewayConfig(carrier topology.CarrierProfile, arch cellular.Arch, seed int64) Config {
	return Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteFreeway,
		RouteLengthM: 40000,
		SpeedMPS:     29,
		Seed:         seed,
		TopoOpts:     topology.Options{SkipMMWave: true},
	}
}

func TestRunLTEFreeway(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpX(), cellular.ArchLTE, 7))
	if err != nil {
		t.Fatal(err)
	}
	if log.DistanceKM() < 35 {
		t.Fatalf("drive too short: %.1f km", log.DistanceKM())
	}
	if len(log.Handovers) == 0 {
		t.Fatal("no handovers on a 40 km LTE drive")
	}
	for _, h := range log.Handovers {
		if h.Type != cellular.HOLTEH {
			t.Fatalf("LTE-only drive produced %s handover", h.Type)
		}
		if h.T1 <= 0 || h.T2 <= 0 {
			t.Fatalf("non-positive stage durations: T1=%v T2=%v", h.T1, h.T2)
		}
	}
	perKm := float64(len(log.Handovers)) / log.DistanceKM()
	// Paper §5.1: a 4G HO every ~0.6 km on freeways → ~1.7/km. Accept a
	// generous band; the shape tests live in the experiments package.
	if perKm < 0.5 || perKm > 4.0 {
		t.Errorf("LTE HO rate %.2f/km outside plausible band [0.5, 4.0]", perKm)
	}
}

func TestRunNSAFreeway(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpX(), cellular.ArchNSA, 11))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[cellular.HOType]int{}
	for _, h := range log.Handovers {
		counts[h.Type]++
	}
	if counts[cellular.HOSCGA] == 0 {
		t.Error("NSA drive never added an SCG")
	}
	if counts[cellular.HOLTEH] != 0 {
		t.Log("note: LTEH occurred in NSA while no NR leg attached (allowed)")
	}
	nsaPerKm := float64(len(log.Handovers)) / log.DistanceKM()
	lteLog, err := Run(freewayConfig(topology.OpX(), cellular.ArchLTE, 11))
	if err != nil {
		t.Fatal(err)
	}
	ltePerKm := float64(len(lteLog.Handovers)) / lteLog.DistanceKM()
	if nsaPerKm <= ltePerKm {
		t.Errorf("NSA HO rate (%.2f/km) should exceed LTE (%.2f/km), §5.1", nsaPerKm, ltePerKm)
	}
	// NR leg must actually carry data for a meaningful fraction of the
	// drive.
	nrTicks := 0
	for _, s := range log.Samples {
		if s.ServingNR.Valid {
			nrTicks++
		}
	}
	if frac := float64(nrTicks) / float64(len(log.Samples)); frac < 0.4 {
		t.Errorf("NR leg attached only %.0f%% of the NSA drive", frac*100)
	}
}

func TestRunSAFreeway(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpY(), cellular.ArchSA, 13))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Handovers) == 0 {
		t.Fatal("no SA handovers")
	}
	for _, h := range log.Handovers {
		if h.Type != cellular.HOMCGH {
			t.Fatalf("SA drive produced %s", h.Type)
		}
	}
}

func TestSANotOfferedByOpX(t *testing.T) {
	_, err := Run(freewayConfig(topology.OpX(), cellular.ArchSA, 1))
	if err == nil {
		t.Fatal("expected error: OpX does not deploy SA")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(freewayConfig(topology.OpX(), cellular.ArchNSA, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(freewayConfig(topology.OpX(), cellular.ArchNSA, 99))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Handovers) != len(b.Handovers) || len(a.Samples) != len(b.Samples) {
		t.Fatalf("same seed, different drives: %d/%d HOs, %d/%d samples",
			len(a.Handovers), len(b.Handovers), len(a.Samples), len(b.Samples))
	}
	for i := range a.Handovers {
		if a.Handovers[i] != b.Handovers[i] {
			t.Fatalf("handover %d differs between identical runs", i)
		}
	}
}

func TestSampleDecimation(t *testing.T) {
	cfg := freewayConfig(topology.OpX(), cellular.ArchLTE, 5)
	cfg.SampleEveryN = 4
	dec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SampleEveryN = 1
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (len(full.Samples) + 3) / 4
	if math.Abs(float64(len(dec.Samples)-want)) > 2 {
		t.Errorf("decimated samples = %d, want ≈%d", len(dec.Samples), want)
	}
	// Decimation must not change the handover stream.
	if len(dec.Handovers) != len(full.Handovers) {
		t.Errorf("decimation changed handovers: %d vs %d", len(dec.Handovers), len(full.Handovers))
	}
}

func TestHandoverInterruptionVisibleInSamples(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpX(), cellular.ArchLTE, 21))
	if err != nil {
		t.Fatal(err)
	}
	sawInHO := false
	for _, s := range log.Samples {
		if s.InHO {
			sawInHO = true
			if s.TputMbps != 0 {
				t.Fatalf("throughput %.1f Mbps during LTE HO execution; want 0", s.TputMbps)
			}
		}
	}
	if !sawInHO {
		t.Error("no sample overlapped a handover execution window")
	}
}

func TestMNBHForcesSCGRelease(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpX(), cellular.ArchNSA, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Every MNBH with an attached NR leg must be immediately followed by a
	// forced SCG procedure — a Change (release+re-add) or a Release —
	// §6.1's coverage-reduction mechanism.
	for i, h := range log.Handovers {
		if h.Type != cellular.HOMNBH || i+1 >= len(log.Handovers) {
			continue
		}
		n := log.Handovers[i+1]
		if !n.Type.Is5G() {
			continue // NR leg was not attached at MNBH time
		}
		if n.Type != cellular.HOSCGC && n.Type != cellular.HOSCGR && n.Type != cellular.HOSCGA {
			t.Fatalf("MNBH at %v followed by %s; want SCGC/SCGR/SCGA", h.Time, n.Type)
		}
	}
}

func TestHandoverTimesMonotonic(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpY(), cellular.ArchNSA, 41))
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i, h := range log.Handovers {
		if h.Time < last {
			t.Fatalf("handover %d time %v before previous %v", i, h.Time, last)
		}
		last = h.Time
	}
}
