package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// update regenerates testdata/golden.json from the current implementation:
//
//	go test ./internal/sim -run TestGoldenTraces -update
//
// Only do this when a change is *meant* to alter simulator output; the whole
// point of the file is to pin the byte-level trace encoding across
// refactors, so every regenerated paper table stays bit-identical.
var update = flag.Bool("update", false, "rewrite golden trace hashes")

// goldenCase pins one drive configuration; Hash is the SHA-256 of the
// trace.Log JSONL encoding (samples, reports and handovers included).
type goldenCase struct {
	Carrier string        `json:"carrier"`
	Arch    cellular.Arch `json:"arch"`
	Route   geo.RouteKind `json:"route"`
	Seed    int64         `json:"seed"`
	Hash    string        `json:"sha256"`
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

// goldenConfig expands a case into the full sim.Config. City drives keep the
// mmWave layer (denser topology, blockage process active); the freeway keeps
// it too so the golden set covers every per-cell state process.
func goldenConfig(c goldenCase, t *testing.T) Config {
	t.Helper()
	carrier, err := topology.CarrierByName(c.Carrier)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Carrier:    carrier,
		Arch:       c.Arch,
		RouteKind:  c.Route,
		Seed:       c.Seed,
		BearerMode: throughput.ModeSplit,
	}
	if c.Route == geo.RouteCityLoop {
		cfg.RouteLengthM = 1600
		cfg.SpeedMPS = 8
		cfg.TopoOpts = topology.Options{CityDensity: 0.7}
	} else {
		cfg.RouteLengthM = 4000
		cfg.SpeedMPS = 29
	}
	return cfg
}

// goldenCases enumerates ≥3 seeds × {NSA, SA} × {city, freeway}. NSA runs on
// OpX (mmWave carrier), SA on OpY (the only SA operator).
func goldenCases() []goldenCase {
	var out []goldenCase
	for _, seed := range []int64{101, 202, 303} {
		for _, route := range []geo.RouteKind{geo.RouteFreeway, geo.RouteCityLoop} {
			out = append(out,
				goldenCase{Carrier: "OpX", Arch: cellular.ArchNSA, Route: route, Seed: seed},
				goldenCase{Carrier: "OpY", Arch: cellular.ArchSA, Route: route, Seed: seed},
			)
		}
	}
	return out
}

// traceHash encodes the log exactly as trace.Log.Write does and hashes it.
func traceHash(t *testing.T, cfg Config) string {
	t.Helper()
	log, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	if err := log.Write(h); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenTraces asserts that, for fixed seeds, the simulator produces
// byte-identical trace encodings to the committed golden hashes. RNG draw
// order is part of the simulator's public behaviour: any reordering of
// random draws (scan order, lazy state initialisation, scratch reuse)
// silently changes every regenerated paper number, so perf refactors must
// keep this test green without -update.
func TestGoldenTraces(t *testing.T) {
	cases := goldenCases()
	if *update {
		for i := range cases {
			cases[i].Hash = traceHash(t, goldenConfig(cases[i], t))
		}
		buf, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath(t), len(cases))
		return
	}

	buf, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("golden file has %d cases, test expects %d (regenerate with -update)", len(want), len(cases))
	}
	for _, c := range want {
		c := c
		t.Run(c.Carrier+"-"+c.Arch.String()+"-"+c.Route.String()+"-"+
			string(rune('0'+c.Seed/100)), func(t *testing.T) {
			got := traceHash(t, goldenConfig(c, t))
			if got != c.Hash {
				t.Errorf("trace hash drifted:\n  got  %s\n  want %s\n"+
					"the simulator's output (including RNG draw order) changed", got, c.Hash)
			}
		})
	}
}
