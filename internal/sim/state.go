package sim

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/policygen"
	"repro/internal/radio"
	"repro/internal/ran"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/ue"
)

// cellObs is one tick's observation of a cell.
type cellObs struct {
	cell *cellular.Cell
	rsrp float64
}

// pendingHO is a handover in flight.
type pendingHO struct {
	typ       cellular.HOType
	decidedAt time.Duration // MR arrival (start of T1)
	cmdAt     time.Duration // HO command (start of T2)
	endAt     time.Duration // completion (end of T2)
	t1, t2    time.Duration
	targetLTE *cellular.Cell
	targetNR  *cellular.Cell
	logged    bool
}

type state struct {
	cfg   Config
	route *geo.Polyline
	dep   *topology.Deployment
	rng   *rand.Rand
	prop  *radio.PropagationModel

	grid *cellGrid

	meas   *ue.MeasurementEngine
	engine *ran.Engine
	// events is the active measurement-configuration table: the portfolio
	// (or named-carrier) table at start, swapped wholesale by a policy
	// drift. Reconfigure call sites use this cached slice rather than
	// re-deriving from the carrier name, so drifted policies survive
	// handovers and RLF recovery.
	events []cellular.EventConfig
	// drifts are the pending mid-run policy rewrites, in time order;
	// nextDrift indexes the first not yet applied.
	drifts    []policygen.Drift
	nextDrift int
	// Per-cell processes are addressed by the deployment's state slot
	// (Deployment.StateSlot) instead of GlobalID-keyed maps: a slice load
	// replaces a fmt.Sprintf allocation plus a string hash per cell per
	// tick. Cells sharing a (tech, PCI) identity share a slot, exactly as
	// they shared a map entry. Slots initialise lazily (nil / !l3Valid) so
	// creation order — and with it every RNG sub-stream — matches the
	// map-based implementation.
	shadows []*radio.ShadowField
	// l3 holds per-cell L3-filtered RSRP (3GPP layer-3 filtering smooths
	// fast fading before event evaluation, preventing measurement-noise
	// ping-pong); l3Valid marks slots that have seen a first observation.
	l3      []float64
	l3Valid []bool
	// blockage holds the per-mmWave-cell blockage process: abrupt deep
	// fades from bodies/vehicles/foliage are the defining propagation
	// behaviour of mmWave links and the trigger behind most of its
	// handover churn (§4.1's ~2 Gbps throughput drops).
	blockage []*blockState

	// Per-scan observation index: obsGen[i] == scanGen means the cell with
	// Index i was observed by the most recent scan and its filtered RSRP is
	// obsRSRP[i]. observed() is a pair of slice loads instead of a linear
	// walk of the obs slices.
	scanGen uint64
	obsGen  []uint64
	obsRSRP []float64

	lteCell *cellular.Cell
	nrCell  *cellular.Cell
	pending *pendingHO
	// Beam-training ramp: after attaching a *new* mmWave gNB (SCG addition
	// or change), beam search/refinement keeps throughput depressed for a
	// few seconds (§5.2's beam-management cost; §6.2's missing post-HO
	// improvement). Intra-gNB moves (SCGM) retain beam context.
	nrRampStart time.Duration
	nrRampUntil time.Duration

	now   time.Duration
	odo   float64
	log   *trace.Log
	ticks int

	// scratch per-tick observations per tech.
	obsLTE []cellObs
	obsNR  []cellObs
	// interf is the interferer scratch buffer reused across rrsFor calls;
	// no caller retains the returned slice beyond one call.
	interf []float64
	// scanPoint carries the UE position into visitCell; binding the visitor
	// once at construction keeps the grid walk closure-allocation-free.
	scanPoint geo.Point
	visitCell func(*cellular.Cell)

	// Closed-loop state (nil/zero unless cfg.Adaptive is enabled — the
	// static path must stay bit-identical to the goldens). prog is the
	// embedded online Prognos; actrl the control-side consumer of its
	// forecasts. progRI/progHI are delivery cursors into log.Reports and
	// log.Handovers: handovers are appended at schedule time with their
	// future command timestamp, so cursor delivery naturally hands them to
	// the predictor at command time — the same order core.Replay uses.
	// adaptBase is the unscaled active event table the TTT/hysteresis
	// stance is applied over (it tracks policy drift; s.events holds the
	// stance-adjusted table the UE actually runs).
	prog      *core.Prognos
	actrl     *ran.AdaptiveController
	progRI    int
	progHI    int
	loopTicks []core.TickPrediction
	adaptBase []cellular.EventConfig
}

func newState(cfg Config, route *geo.Polyline, dep *topology.Deployment, rng *rand.Rand) *state {
	slots := dep.StateSlots()
	s := &state{
		cfg:      cfg,
		route:    route,
		dep:      dep,
		rng:      rng,
		prop:     radio.DefaultModel(),
		grid:     newCellGrid(dep.Cells, 1000),
		shadows:  make([]*radio.ShadowField, slots),
		l3:       make([]float64, slots),
		l3Valid:  make([]bool, slots),
		blockage: make([]*blockState, slots),
		obsGen:   make([]uint64, len(dep.Cells)),
		obsRSRP:  make([]float64, len(dep.Cells)),
		log: &trace.Log{
			Carrier:   cfg.Carrier.Name,
			Arch:      cfg.Arch,
			RouteKind: cfg.RouteKind.String(),
		},
	}
	s.visitCell = func(c *cellular.Cell) {
		p := s.scanPoint
		d := p.Dist(geo.Point{X: c.X, Y: c.Y})
		if d > maxRangeM(c.Band) {
			return
		}
		o := cellObs{cell: c, rsrp: s.filter(c, s.observeAt(c, p, d))}
		s.obsGen[c.Index] = s.scanGen
		s.obsRSRP[c.Index] = o.rsrp
		if c.Tech == cellular.TechLTE {
			s.obsLTE = append(s.obsLTE, o)
		} else {
			s.obsNR = append(s.obsNR, o)
		}
	}
	var policy *ran.Policy
	if cfg.Scenario != nil {
		s.events = ran.EventConfigsFromPortfolio(&cfg.Scenario.Base, cfg.Arch)
		policy = ran.PolicyFromPortfolio(&cfg.Scenario.Base, cfg.Arch)
		s.drifts = cfg.Scenario.Drifts
	} else {
		s.events = ran.EventConfigsFor(cfg.Carrier.Name, cfg.Arch)
		policy = ran.PolicyFor(cfg.Carrier.Name, cfg.Arch)
	}
	me, err := ue.NewMeasurementEngine(s.events)
	if err != nil {
		panic("sim: " + err.Error())
	}
	s.meas = me
	s.engine = ran.NewEngine(policy)
	if cfg.Adaptive.Enabled() {
		s.actrl = ran.NewAdaptiveController(*cfg.Adaptive)
		s.adaptBase = s.events
		prog, err := core.New(core.Config{
			EventConfigs:       s.events,
			UseReportPredictor: true,
			Arch:               cfg.Arch,
		})
		if err != nil {
			panic("sim: " + err.Error())
		}
		s.prog = prog
	}
	return s
}

// applyDrift activates any scheduled policy rewrites whose time has come:
// the serving network pushes a fresh measurement configuration (resetting
// TTT state, as any reconfiguration does) and swaps its decision logic.
// The deployment is untouched — drift models a parameter push, not new
// towers.
func (s *state) applyDrift() {
	for s.nextDrift < len(s.drifts) && s.now >= s.drifts[s.nextDrift].At {
		p := &s.drifts[s.nextDrift].Portfolio
		s.nextDrift++
		s.events = ran.EventConfigsFromPortfolio(p, s.cfg.Arch)
		if s.actrl != nil {
			// Drift replaces the base table; the applied stance carries over
			// onto it, and the embedded predictor sniffs the fresh push.
			s.adaptBase = s.events
			if scale, delta := s.actrl.StanceParams(); scale != 1 || delta != 0 {
				s.events = ran.AdaptEventConfigs(s.adaptBase, scale, delta)
			}
			s.prog.SetEventConfigs(s.events)
		}
		s.engine.SetPolicy(ran.PolicyFromPortfolio(p, s.cfg.Arch))
		s.meas.Reconfigure(s.events)
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.Event{
				Kind:    obs.EvPolicyDrift,
				SimMS:   float64(s.now) / float64(time.Millisecond),
				Carrier: s.cfg.Carrier.Name,
				Arch:    s.cfg.Arch.String(),
				Detail:  "policy rewrite -> " + p.SequenceString(),
			})
		}
	}
}

// shadowFor returns the per-cell correlated shadowing process.
func (s *state) shadowFor(c *cellular.Cell) *radio.ShadowField {
	slot := s.dep.StateSlot(c)
	f := s.shadows[slot]
	if f == nil {
		// Derive a per-cell deterministic sub-seed so drives are
		// reproducible regardless of initialisation order.
		sub := rand.New(rand.NewSource(s.cfg.Seed ^ int64(c.PCI)<<17 ^ int64(c.TowerID)<<3 ^ int64(c.Tech)))
		f = s.prop.NewShadowField(sub)
		s.shadows[slot] = f
	}
	return f
}

// blockState is a per-cell two-state blockage process: the link alternates
// between clear and blocked, with exponential clear periods and short deep
// fades.
type blockState struct {
	rng          *rand.Rand
	blockedUntil time.Duration
	nextBlock    time.Duration
	primed       bool
}

// Blockage process parameters: a mmWave link is blocked on average every
// ~18 s for ~1.5 s, losing ~22 dB.
const (
	blockMeanGapS = 18.0
	blockMeanDurS = 1.5
	blockLossDB   = 22.0
)

// lossAt returns the blockage attenuation at time now.
func (b *blockState) lossAt(now time.Duration) float64 {
	if !b.primed {
		b.primed = true
		b.nextBlock = now + time.Duration(b.rng.ExpFloat64()*blockMeanGapS*float64(time.Second))
	}
	if now < b.blockedUntil {
		return blockLossDB
	}
	if now >= b.nextBlock {
		dur := time.Duration((0.5 + b.rng.ExpFloat64()*blockMeanDurS) * float64(time.Second))
		b.blockedUntil = now + dur
		b.nextBlock = b.blockedUntil + time.Duration(b.rng.ExpFloat64()*blockMeanGapS*float64(time.Second))
		return blockLossDB
	}
	return 0
}

// blockFor returns the blockage process of a mmWave cell.
func (s *state) blockFor(c *cellular.Cell) *blockState {
	slot := s.dep.StateSlot(c)
	b := s.blockage[slot]
	if b == nil {
		b = &blockState{rng: rand.New(rand.NewSource(s.cfg.Seed ^ int64(c.PCI)<<23 ^ int64(c.TowerID)<<5 ^ 0x5bd1))}
		s.blockage[slot] = b
	}
	return b
}

// observe computes the instantaneous RSRP of a cell at position p.
func (s *state) observe(c *cellular.Cell, p geo.Point) float64 {
	return s.observeAt(c, p, p.Dist(geo.Point{X: c.X, Y: c.Y}))
}

// observeAt is observe with the UE–cell distance already computed (the scan
// path needs the distance for range filtering anyway).
func (s *state) observeAt(c *cellular.Cell, p geo.Point, d float64) float64 {
	rsrp := s.prop.MedianRSRP(c.Band, c.TxPower, d)
	rsrp += s.dep.SectorGainDB(c, p)
	rsrp += s.shadowFor(c).At(s.odo)
	rsrp += s.prop.Fading(s.rng)
	if c.Band == cellular.BandMMWave {
		rsrp -= s.blockFor(c).lossAt(s.now)
	}
	return rsrp
}

// l3Alpha is the per-tick EMA coefficient of the 3GPP L3 measurement
// filter (filterCoefficient ≈ 4 at 20 Hz sampling).
const l3Alpha = 0.25

// filter applies L3 filtering to a raw observation of one cell.
func (s *state) filter(c *cellular.Cell, raw float64) float64 {
	slot := s.dep.StateSlot(c)
	if !s.l3Valid[slot] {
		s.l3Valid[slot] = true
		s.l3[slot] = raw
		return raw
	}
	v := s.l3[slot]*(1-l3Alpha) + raw*l3Alpha
	s.l3[slot] = v
	return v
}

// scan refreshes the per-tick observation lists for both technologies.
func (s *state) scan(p geo.Point) {
	s.obsLTE = s.obsLTE[:0]
	s.obsNR = s.obsNR[:0]
	s.scanGen++
	s.scanPoint = p
	s.grid.nearby(p, s.visitCell)
}

// best returns the strongest observation, optionally excluding one cell.
func best(obs []cellObs, exclude *cellular.Cell) (cellObs, bool) {
	found := false
	var bst cellObs
	for _, o := range obs {
		if exclude != nil && o.cell == exclude {
			continue
		}
		if !found || o.rsrp > bst.rsrp {
			bst = o
			found = true
		}
	}
	return bst, found
}

// bestInBand returns the strongest observation within a band.
func bestInBand(obs []cellObs, band cellular.Band, exclude *cellular.Cell) (cellObs, bool) {
	found := false
	var bst cellObs
	for _, o := range obs {
		if o.cell.Band != band || (exclude != nil && o.cell == exclude) {
			continue
		}
		if !found || o.rsrp > bst.rsrp {
			bst = o
			found = true
		}
	}
	return bst, found
}

// addThreshold is the minimum RSRP for an NR band to be considered for SCG
// addition; the band-priority search below prefers the highest-capacity
// band that clears its threshold (mmWave where available, as carriers do).
func addThreshold(band cellular.Band) float64 {
	switch band {
	case cellular.BandMMWave:
		return -100
	case cellular.BandMid:
		return -102
	default:
		return -104
	}
}

// nrCandidate picks the NR cell an SCG addition or change would target:
// band-priority selection of the *first adequate* cell (above the band's
// add threshold), excluding the currently attached NR cell. Picking an
// adequate rather than the optimal target reproduces the §6.2 finding that
// the independent release/add legs of an SCG change are decided without
// end-to-end signal comparison.
func (s *state) nrCandidate() (cellObs, bool) {
	// One pass over the observations records the first adequate cell per
	// band (the seed implementation re-walked the slice once per band);
	// selection is unchanged: highest-priority band wins, first adequate
	// cell in scan order within it.
	var cand [3]cellObs
	var have [3]bool
	for _, o := range s.obsNR {
		b := o.cell.Band
		if int(b) >= len(have) || have[b] || o.cell == s.nrCell {
			continue
		}
		if o.rsrp > addThreshold(b) {
			cand[b] = o
			have[b] = true
		}
	}
	for _, band := range [...]cellular.Band{cellular.BandMMWave, cellular.BandMid, cellular.BandLow} {
		if have[band] {
			return cand[band], true
		}
	}
	return cellObs{}, false
}

// nrStrongest is nrCandidate's skip-ahead variant: within the
// highest-priority band that has any adequate cell, it picks the
// *strongest* one — the cell a handover chain would eventually settle on —
// instead of the first adequate in scan order. Only the adaptive layer
// uses it; the static path keeps the §6.2 independent-legs behaviour.
func (s *state) nrStrongest() (cellObs, bool) {
	var cand [3]cellObs
	var have [3]bool
	for _, o := range s.obsNR {
		b := o.cell.Band
		if int(b) >= len(have) || o.cell == s.nrCell {
			continue
		}
		if o.rsrp > addThreshold(b) && (!have[b] || o.rsrp > cand[b].rsrp) {
			cand[b] = o
			have[b] = true
		}
	}
	for _, band := range [...]cellular.Band{cellular.BandMMWave, cellular.BandMid, cellular.BandLow} {
		if have[band] {
			return cand[band], true
		}
	}
	return cellObs{}, false
}

// lookup finds the cell matching a technology and PCI nearest to p (PCIs
// wrap spatially, as in real deployments). The deployment's (tech, PCI)
// index narrows the scan to the few cells sharing the identity.
func (s *state) lookup(tech cellular.Tech, pci cellular.PCI, p geo.Point) *cellular.Cell {
	var bst *cellular.Cell
	bd := math.MaxFloat64
	for _, c := range s.dep.CellsWithPCI(tech, pci) {
		d := p.Dist(geo.Point{X: c.X, Y: c.Y})
		if d < bd {
			bd = d
			bst = c
		}
	}
	return bst
}

// observed returns the RSRP of a specific cell as of the most recent scan,
// recomputing if it was out of scan range. (Between applyPending and the
// tick's scan this intentionally serves the previous tick's observation,
// exactly like the obs-slice walk it replaces.)
func (s *state) observed(c *cellular.Cell, p geo.Point) float64 {
	if c == nil {
		return -200
	}
	if s.obsGen[c.Index] == s.scanGen {
		return s.obsRSRP[c.Index]
	}
	return s.observe(c, p)
}

func (s *state) run() {
	total := s.cfg.RouteLengthM * float64(s.cfg.Laps)
	if s.cfg.RouteKind == geo.RouteCityLoop {
		total = s.route.Length() * float64(s.cfg.Laps)
	} else {
		total = s.route.Length()
	}
	dt := trace.SamplePeriod
	step := s.cfg.SpeedMPS * dt.Seconds()

	// Initial attachment.
	s.scan(s.route.At(0))
	if s.cfg.Arch == cellular.ArchSA {
		if o, ok := best(s.obsNR, nil); ok {
			s.nrCell = o.cell
		}
	} else {
		if o, ok := best(s.obsLTE, nil); ok {
			s.lteCell = o.cell
		}
	}

	for s.odo = 0; s.odo < total; s.odo += step {
		lapPos := math.Mod(s.odo, s.route.Length())
		p := s.route.At(lapPos)
		s.tick(p, dt)
		s.now += dt
		s.ticks++
	}
}

func (s *state) tick(p geo.Point, dt time.Duration) {
	s.applyDrift()

	// Complete an in-flight handover.
	if s.pending != nil && s.now >= s.pending.endAt {
		s.applyPending(p)
	}

	s.scan(p)
	s.recoverIfLost(p)

	in := s.buildMeasInput(p)
	reports := s.meas.Tick(in, dt)
	for _, mr := range reports {
		s.log.Reports = append(s.log.Reports, mr)
		s.maybeDecide(mr, p)
	}

	smp := s.logSample(p)
	if s.actrl != nil {
		s.closeLoop(smp)
	}
}

// closeLoop advances the embedded predictor by one tick and lets its
// forecast steer the controller: reports and handovers logged up to the
// sample's time are delivered (command-time order, exactly as core.Replay
// would), the fresh sample is observed, and the resulting prediction is
// distilled into a ran.Forecast. A due stance change rewrites the live
// measurement configuration — the prediction loop acting on the RAN.
func (s *state) closeLoop(smp trace.Sample) {
	for s.progRI < len(s.log.Reports) && s.log.Reports[s.progRI].Time <= smp.Time {
		s.prog.OnReport(s.log.Reports[s.progRI])
		s.progRI++
	}
	for s.progHI < len(s.log.Handovers) && s.log.Handovers[s.progHI].Time <= smp.Time {
		ho := s.log.Handovers[s.progHI]
		s.prog.OnHandover(ho)
		s.actrl.OnHandover(ho, s.now)
		s.progHI++
	}
	s.prog.OnSample(smp)
	pred := s.prog.Predict()
	s.loopTicks = append(s.loopTicks, core.TickPrediction{Time: smp.Time, Type: pred.Type, PatternKey: pred.PatternKey})
	conf := 0.0
	if pred.Type != cellular.HONone {
		conf = pred.Similarity * pred.Pattern.Reliability()
	}
	s.actrl.OnForecast(ran.Forecast{Type: pred.Type, Confidence: conf, Lead: pred.Lead}, s.now)
	if scale, delta, ok := s.actrl.ReconfigDue(s.now); ok {
		s.events = ran.AdaptEventConfigs(s.adaptBase, scale, delta)
		s.meas.Reconfigure(s.events)
		s.prog.SetEventConfigs(s.events)
	}
}

// recoverIfLost reattaches a UE whose serving cell has fallen below the
// radio-link-failure floor (kept rare by topology density; not counted as a
// handover, mirroring how RLF re-establishment is distinct from HO).
func (s *state) recoverIfLost(p geo.Point) {
	const rlfFloor = -127.0
	if s.cfg.Arch == cellular.ArchSA {
		if s.nrCell == nil || s.observed(s.nrCell, p) < rlfFloor {
			if o, ok := best(s.obsNR, s.nrCell); ok {
				s.nrCell = o.cell
				s.meas.Reconfigure(s.events)
			}
		}
		return
	}
	if s.lteCell == nil || s.observed(s.lteCell, p) < rlfFloor {
		if o, ok := best(s.obsLTE, s.lteCell); ok {
			s.lteCell = o.cell
			s.meas.Reconfigure(s.events)
		}
	}
}

func (s *state) buildMeasInput(p geo.Point) ue.Input {
	in := ue.Input{Time: s.now}
	if s.lteCell != nil {
		srv := s.observed(s.lteCell, p)
		in.LTE = ue.Meas{
			Valid:       true,
			ServingPCI:  s.lteCell.PCI,
			ServingRSRP: srv,
			ServingRRS:  s.rrsFor(s.lteCell, srv),
		}
		// A3 is intra-frequency: the UE compares against neighbours on the
		// serving band (inter-band moves happen via A2/A5 and RLF paths).
		if o, ok := bestInBand(s.obsLTE, s.lteCell.Band, s.lteCell); ok {
			in.LTE.NeighborValid = true
			in.LTE.NeighborPCI = o.cell.PCI
			in.LTE.NeighborRSRP = o.rsrp
		}
	}
	if s.nrCell != nil {
		srv := s.observed(s.nrCell, p)
		in.NR = ue.Meas{
			Valid:       true,
			ServingPCI:  s.nrCell.PCI,
			ServingRSRP: srv,
			ServingRRS:  s.rrsFor(s.nrCell, srv),
		}
		if o, ok := bestInBand(s.obsNR, s.nrCell.Band, s.nrCell); ok {
			in.NR.NeighborValid = true
			in.NR.NeighborPCI = o.cell.PCI
			in.NR.NeighborRSRP = o.rsrp
		}
	}
	if s.cfg.Arch == cellular.ArchNSA {
		// B1 watches the best NR cell other than the attached one — both
		// for initial SCG addition and for converting a weak-SCG release
		// into an SCG change toward a different gNB.
		if o, ok := s.nrCandidate(); ok {
			in.NRCandidate = ue.Meas{Valid: true, ServingPCI: o.cell.PCI, ServingRSRP: o.rsrp}
		}
	}
	return in
}

// rrsFor derives the full RRS triple for a serving observation.
func (s *state) rrsFor(c *cellular.Cell, rsrp float64) cellular.RRS {
	interf := s.interferers(c, rsrp)
	return cellular.RRS{
		RSRP: rsrp,
		RSRQ: radio.RSRQFromRSRP(rsrp, len(interf)),
		SINR: s.prop.SINR(rsrp, interf),
	}
}

// interferers collects co-layer cells within 20 dB of the serving RSRP.
// The returned slice aliases a scratch buffer that the next call reuses;
// callers must consume it before calling again (rrsFor does).
func (s *state) interferers(c *cellular.Cell, servingRSRP float64) []float64 {
	obs := s.obsLTE
	if c.Tech == cellular.TechNR {
		obs = s.obsNR
	}
	out := s.interf[:0]
	for _, o := range obs {
		if o.cell == c || o.cell.Band != c.Band {
			continue
		}
		if o.rsrp > servingRSRP-20 {
			out = append(out, o.rsrp)
		}
	}
	s.interf = out
	return out
}

// maybeDecide feeds an MR to the serving cell and schedules the handover if
// the policy fires.
func (s *state) maybeDecide(mr cellular.MeasurementReport, p geo.Point) {
	ctx := ran.Context{Arch: s.cfg.Arch, NRAttached: s.nrCell != nil}
	if mr.Tech == cellular.TechNR && mr.Event == cellular.EventA3 && s.nrCell != nil {
		if tgt := s.lookup(cellular.TechNR, mr.NeighborPCI, p); tgt != nil {
			ctx.TargetSameGNB = tgt.TowerID == s.nrCell.TowerID
		}
	}
	dec := s.engine.OnReport(mr, ctx)
	if dec == nil {
		return
	}
	s.schedule(dec, p)
}

// schedule creates the pending handover for a decision, sampling stage
// durations and logging the HandoverEvent.
func (s *state) schedule(dec *ran.Decision, p geo.Point) {
	ho := &pendingHO{typ: dec.Type, decidedAt: dec.At}

	var target *cellular.Cell
	switch dec.Type {
	case cellular.HOLTEH, cellular.HOMNBH:
		target = s.lookup(cellular.TechLTE, dec.Trigger.NeighborPCI, p)
		if target == nil || target == s.lteCell {
			if o, ok := best(s.obsLTE, s.lteCell); ok {
				target = o.cell
			}
		}
		ho.targetLTE = target
		if ho.targetLTE == nil {
			return
		}
	case cellular.HOSCGA:
		target = s.lookup(cellular.TechNR, dec.Trigger.NeighborPCI, p)
		if target == nil {
			if o, ok := s.nrCandidate(); ok {
				target = o.cell
			}
		}
		// Skip-ahead: a confident SCG forecast stands, so jump straight to
		// the predicted final cell — the strongest adequate one — instead of
		// the first adequate cell the independent-legs behaviour would pick
		// (and then correct with a follow-up SCG change).
		if s.actrl != nil && s.actrl.SkipAheadActive() {
			if o, ok := s.nrStrongest(); ok && o.cell != target {
				target = o.cell
				s.actrl.NoteSkipAhead()
			}
		}
		if target == nil {
			return // candidate vanished; abort silently
		}
		ho.targetNR = target
	case cellular.HOSCGM, cellular.HOSCGC, cellular.HOMCGH:
		target = s.lookup(cellular.TechNR, dec.Trigger.NeighborPCI, p)
		if target == nil || target == s.nrCell {
			if o, ok := best(s.obsNR, s.nrCell); ok {
				target = o.cell
			}
		}
		if target == nil {
			return
		}
		ho.targetNR = target
	case cellular.HOSCGR:
		// no target
	}

	band := s.hoBand(ho)
	coloc := s.coLocated(ho)
	t1, t2 := ran.SampleDurations(ran.DurationParams{Type: dec.Type, Band: band, CoLocated: coloc}, s.rng)
	if s.actrl != nil {
		// Early-prep: a standing forecast of this type means preparation
		// effectively began when the forecast armed, shrinking T1 — and,
		// because the target came pre-configured, part of the execution
		// stage T2 (the interruption the UE actually feels).
		t1, t2 = s.actrl.ApplyPrep(dec.Type, s.now, t1, t2)
	}
	ho.t1, ho.t2 = t1, t2
	ho.cmdAt = dec.At + t1
	ho.endAt = ho.cmdAt + t2
	s.pending = ho
	s.engine.Begin(ho.endAt)

	s.logHO(ho, band, coloc)
}

// hoBand returns the band a handover is attributed to: the NR data-plane
// band for 5G procedures, the LTE serving band otherwise.
func (s *state) hoBand(ho *pendingHO) cellular.Band {
	switch {
	case ho.targetNR != nil:
		return ho.targetNR.Band
	case ho.typ.Is5G() && s.nrCell != nil:
		return s.nrCell.Band
	case s.lteCell != nil:
		return s.lteCell.Band
	case s.nrCell != nil:
		return s.nrCell.Band
	default:
		return cellular.BandMid
	}
}

// coLocated reports whether the NSA HO's gNB (origin or destination) shares
// a tower with the LTE anchor.
func (s *state) coLocated(ho *pendingHO) bool {
	if s.cfg.Arch != cellular.ArchNSA || s.lteCell == nil {
		return false
	}
	if ho.targetNR != nil && ho.targetNR.TowerID == s.lteCell.TowerID {
		return true
	}
	if s.nrCell != nil && s.nrCell.TowerID == s.lteCell.TowerID {
		return true
	}
	return false
}

func (s *state) logHO(ho *pendingHO, band cellular.Band, coloc bool) {
	ev := cellular.HandoverEvent{
		Time:      ho.cmdAt,
		Type:      ho.typ,
		Arch:      s.cfg.Arch,
		Band:      band,
		T1:        ho.t1,
		T2:        ho.t2,
		CoLocated: coloc,
		DistanceM: s.odo,
		Signaling: ran.SignalingFor(ho.typ, band, s.rng),
	}
	switch {
	case ho.targetLTE != nil:
		if s.lteCell != nil {
			ev.SourcePCI = s.lteCell.PCI
			ev.SourceCell = s.lteCell.GlobalID()
		}
		ev.TargetPCI = ho.targetLTE.PCI
		ev.TargetCell = ho.targetLTE.GlobalID()
	case ho.targetNR != nil:
		if s.nrCell != nil {
			ev.SourcePCI = s.nrCell.PCI
			ev.SourceCell = s.nrCell.GlobalID()
		}
		ev.TargetPCI = ho.targetNR.PCI
		ev.TargetCell = ho.targetNR.GlobalID()
	case s.nrCell != nil: // SCGR
		ev.SourcePCI = s.nrCell.PCI
		ev.SourceCell = s.nrCell.GlobalID()
	}
	ho.logged = true
	s.log.Handovers = append(s.log.Handovers, ev)
	s.traceHO(ev)
}

// traceHO mirrors one scheduled handover into the drive's tracer (when
// one is attached) as the same obs.EvHOTrigger event the serving daemon
// emits. MRSeq is the measurement-report ordinal at decision time, tying
// the trigger back to the MR sequence that fired the policy.
func (s *state) traceHO(ev cellular.HandoverEvent) {
	if s.cfg.Tracer == nil {
		return
	}
	s.cfg.Tracer.Emit(obs.Event{
		Kind:    obs.EvHOTrigger,
		SimMS:   float64(ev.Time) / float64(time.Millisecond),
		Carrier: s.cfg.Carrier.Name,
		Arch:    s.cfg.Arch.String(),
		HOType:  ev.Type.String(),
		Source:  ev.SourceCell,
		Target:  ev.TargetCell,
		MRSeq:   int64(len(s.log.Reports)),
	})
}

// applyPending commits the attachment change at the end of T2, chaining the
// forced SCG release that follows an NSA anchor handover (§6.1).
func (s *state) applyPending(p geo.Point) {
	ho := s.pending
	s.pending = nil
	switch ho.typ {
	case cellular.HOLTEH:
		if ho.targetLTE != nil {
			s.lteCell = ho.targetLTE
		}
	case cellular.HOMNBH:
		if ho.targetLTE != nil {
			s.lteCell = ho.targetLTE
		}
		// NSA cannot carry the SCG across anchors: the 5G leg is released
		// and (where coverage allows) re-added — an SCG Change from the
		// procedure-count perspective, with a real data-plane detach gap
		// that breaks the 5G cell's dwell (§6.1's effective-coverage
		// reduction).
		if s.nrCell != nil {
			s.chainSCGMobility(p)
			return
		}
	case cellular.HOSCGA, cellular.HOSCGM, cellular.HOSCGC, cellular.HOMCGH:
		if ho.targetNR != nil {
			newGNB := s.nrCell == nil || ho.targetNR.TowerID != s.nrCell.TowerID
			s.nrCell = ho.targetNR
			if newGNB && ho.targetNR.Band == cellular.BandMMWave {
				s.nrRampStart = s.now
				s.nrRampUntil = s.now + beamTrainingDur
			}
		}
	case cellular.HOSCGR:
		s.nrCell = nil
	}
	// New serving cell pushes fresh measurement configuration (Fig. 1
	// step 1), resetting TTT state.
	s.meas.Reconfigure(s.events)
}

// beamTrainingDur is how long a freshly attached mmWave gNB needs to
// converge its beam; capacity ramps from beamTrainingFloor to full over
// this window.
const beamTrainingDur = 3 * time.Second

// beamTrainingFloor is the initial capacity fraction right after attach.
const beamTrainingFloor = 0.3

// nrRampFactor returns the current beam-training capacity multiplier.
func (s *state) nrRampFactor() float64 {
	if s.nrCell == nil || s.nrCell.Band != cellular.BandMMWave || s.now >= s.nrRampUntil {
		return 1
	}
	frac := float64(s.now-s.nrRampStart) / float64(beamTrainingDur)
	return beamTrainingFloor + (1-beamTrainingFloor)*frac
}

// chainSCGMobility schedules the SCG procedure forced by an anchor change:
// an SCG Change (release + re-add, one procedure) when NR coverage persists,
// otherwise a plain SCG Release. The NR leg detaches immediately, so the
// old 5G cell's dwell ends even if the re-add lands on the same PCI.
func (s *state) chainSCGMobility(p geo.Point) {
	band := cellular.BandLow
	if s.nrCell != nil {
		band = s.nrCell.Band
	}
	coloc := s.nrCell != nil && s.lteCell != nil && s.nrCell.TowerID == s.lteCell.TowerID
	srcNR := s.nrCell
	s.nrCell = nil // release happens up front

	typ := cellular.HOSCGR
	var target *cellular.Cell
	var targetRSRP float64
	skipAhead := s.actrl != nil && s.actrl.SkipAheadActive()
	if skipAhead {
		// Skip-ahead: re-add the predicted final cell (strongest adequate)
		// rather than the first adequate one.
		if o, ok := s.nrStrongest(); ok {
			typ = cellular.HOSCGC
			target = o.cell
			targetRSRP = o.rsrp
		}
	} else if o, ok := s.nrCandidate(); ok {
		typ = cellular.HOSCGC
		target = o.cell
		targetRSRP = o.rsrp
	}
	if srcNR != nil {
		// The released cell itself competes for the re-add: the new anchor
		// usually re-attaches the strongest adequate gNB, which is often
		// the one just released (§6.1's effective-coverage mechanism still
		// holds — the dwell is broken by the release gap).
		if rsrp := s.observed(srcNR, p); rsrp > addThreshold(srcNR.Band) && (target == nil || rsrp > targetRSRP) {
			typ = cellular.HOSCGC
			target = srcNR
		}
	}
	if skipAhead && target != nil {
		if o, ok := s.nrCandidate(); !ok || o.cell != target {
			s.actrl.NoteSkipAhead()
		}
	}
	if target != nil {
		band = target.Band
	}

	t1, t2 := ran.SampleDurations(ran.DurationParams{Type: typ, Band: band, CoLocated: coloc}, s.rng)
	ho := &pendingHO{
		typ:       typ,
		decidedAt: s.now,
		t1:        t1,
		t2:        t2,
		cmdAt:     s.now + t1,
		targetNR:  target,
	}
	ho.endAt = ho.cmdAt + t2
	s.pending = ho
	s.engine.Begin(ho.endAt)

	ev := cellular.HandoverEvent{
		Time:      ho.cmdAt,
		Type:      typ,
		Arch:      s.cfg.Arch,
		Band:      band,
		T1:        t1,
		T2:        t2,
		CoLocated: coloc,
		DistanceM: s.odo,
		Signaling: ran.SignalingFor(typ, band, s.rng),
	}
	if srcNR != nil {
		ev.SourcePCI = srcNR.PCI
		ev.SourceCell = srcNR.GlobalID()
	}
	if target != nil {
		ev.TargetPCI = target.PCI
		ev.TargetCell = target.GlobalID()
	}
	s.log.Handovers = append(s.log.Handovers, ev)
	s.traceHO(ev)
}

// logSample records the 20 Hz cross-layer sample and returns it (the
// closed loop consumes every tick's sample even when SampleEveryN thins
// what the trace stores).
func (s *state) logSample(p geo.Point) trace.Sample {
	inHO := s.pending != nil && s.now >= s.pending.cmdAt && s.now < s.pending.endAt
	hoType := cellular.HONone
	if inHO {
		hoType = s.pending.typ
	}

	smp := trace.Sample{
		Time:      s.now,
		X:         p.X,
		Y:         p.Y,
		OdometerM: s.odo,
		SpeedMPS:  s.cfg.SpeedMPS,
		Arch:      s.cfg.Arch,
		InHO:      inHO,
		HOType:    hoType,
	}

	var lteMbps, nrMbps float64
	if s.lteCell != nil {
		rsrp := s.observed(s.lteCell, p)
		rrs := s.rrsFor(s.lteCell, rsrp)
		smp.ServingLTE = trace.CellObs{PCI: s.lteCell.PCI, Tech: cellular.TechLTE, Band: s.lteCell.Band, RSRP: rrs.RSRP, RSRQ: rrs.RSRQ, SINR: rrs.SINR, Valid: true}
		lteMbps = throughput.CapacityMbps(cellular.TechLTE, s.lteCell.Band, rrs.SINR)
		if o, ok := bestInBand(s.obsLTE, s.lteCell.Band, s.lteCell); ok {
			smp.NeighborLTE = trace.CellObs{PCI: o.cell.PCI, Tech: cellular.TechLTE, Band: o.cell.Band, RSRP: o.rsrp, Valid: true}
		}
	}
	if s.nrCell != nil {
		rsrp := s.observed(s.nrCell, p)
		rrs := s.rrsFor(s.nrCell, rsrp)
		smp.ServingNR = trace.CellObs{PCI: s.nrCell.PCI, Tech: cellular.TechNR, Band: s.nrCell.Band, RSRP: rrs.RSRP, RSRQ: rrs.RSRQ, SINR: rrs.SINR, Valid: true}
		nrMbps = throughput.CapacityMbps(cellular.TechNR, s.nrCell.Band, rrs.SINR) * s.nrRampFactor()
		if o, ok := bestInBand(s.obsNR, s.nrCell.Band, s.nrCell); ok {
			smp.NeighborNR = trace.CellObs{PCI: o.cell.PCI, Tech: cellular.TechNR, Band: o.cell.Band, RSRP: o.rsrp, Valid: true}
		}
	} else if s.cfg.Arch == cellular.ArchNSA {
		if o, ok := s.nrCandidate(); ok {
			smp.NeighborNR = trace.CellObs{PCI: o.cell.PCI, Tech: cellular.TechNR, Band: o.cell.Band, RSRP: o.rsrp, Valid: true}
		}
	}

	var intr throughput.Interruption
	if inHO {
		intr = throughput.InterruptionFor(hoType)
	}
	switch s.cfg.Arch {
	case cellular.ArchSA:
		smp.TputMbps = throughput.Effective(throughput.ModeSCG, 0, nrMbps, intr, true)
	case cellular.ArchNSA:
		smp.TputMbps = throughput.Effective(s.cfg.BearerMode, lteMbps, nrMbps, intr, s.nrCell != nil)
	default:
		smp.TputMbps = throughput.Effective(throughput.ModeSCG, lteMbps, 0, intr, false)
		if intr.LTE {
			smp.TputMbps = 0
		} else {
			smp.TputMbps = lteMbps
		}
	}

	if s.ticks%s.cfg.SampleEveryN == 0 {
		s.log.Samples = append(s.log.Samples, smp)
	}
	return smp
}
