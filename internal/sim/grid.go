package sim

import (
	"math"

	"repro/internal/cellular"
	"repro/internal/geo"
)

// cellGrid is a uniform spatial hash over cells, so per-tick scans touch
// only nearby towers even on cross-country routes with tens of thousands of
// cells.
type cellGrid struct {
	cellSize float64
	buckets  map[gridKey][]*cellular.Cell
	// maxRange is the largest search radius any band needs, in buckets.
	reach int
}

type gridKey struct{ ix, iy int }

func newCellGrid(cells []*cellular.Cell, cellSize float64) *cellGrid {
	g := &cellGrid{cellSize: cellSize, buckets: make(map[gridKey][]*cellular.Cell)}
	maxR := 0.0
	for _, c := range cells {
		k := g.keyFor(c.X, c.Y)
		g.buckets[k] = append(g.buckets[k], c)
		if r := maxRangeM(c.Band); r > maxR {
			maxR = r
		}
	}
	g.reach = int(math.Ceil(maxR/cellSize)) + 1
	return g
}

func (g *cellGrid) keyFor(x, y float64) gridKey {
	return gridKey{int(math.Floor(x / g.cellSize)), int(math.Floor(y / g.cellSize))}
}

// nearby visits every cell within the grid reach of p. Callers apply exact
// per-band range filtering.
func (g *cellGrid) nearby(p geo.Point, visit func(*cellular.Cell)) {
	k := g.keyFor(p.X, p.Y)
	for dx := -g.reach; dx <= g.reach; dx++ {
		for dy := -g.reach; dy <= g.reach; dy++ {
			for _, c := range g.buckets[gridKey{k.ix + dx, k.iy + dy}] {
				visit(c)
			}
		}
	}
}
