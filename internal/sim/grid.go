package sim

import (
	"math"

	"repro/internal/cellular"
	"repro/internal/geo"
)

// cellGrid is a uniform spatial hash over cells, so per-tick scans touch
// only nearby towers even on cross-country routes with tens of thousands of
// cells. Buckets live in a dense row-major array over the deployment's
// bounding box — drive-route deployments are thin corridors, so the array
// stays small and the per-tick probe loop does index arithmetic instead of
// a map hash per candidate bucket.
type cellGrid struct {
	cellSize float64
	// minIx/minIy anchor the dense array; nx/ny are its dimensions.
	minIx, minIy int
	nx, ny       int
	buckets      []gridBucket
	// reach is the largest search radius any band needs, in buckets.
	reach int
}

// gridBucket holds one hash cell's towers plus the squared radio reach of
// its longest-range band, so nearby can skip buckets that cannot contain an
// in-range cell: a low-band tower is visible from 9 km but a mmWave-only
// bucket matters within 800 m, and without the per-bucket bound the global
// low-band reach would force every mmWave-dense bucket of the search square
// to be walked.
type gridBucket struct {
	cells  []*cellular.Cell
	reach2 float64
}

type gridKey struct{ ix, iy int }

func newCellGrid(cells []*cellular.Cell, cellSize float64) *cellGrid {
	g := &cellGrid{cellSize: cellSize}
	maxR := 0.0
	keys := make([]gridKey, len(cells))
	var maxIx, maxIy int
	for i, c := range cells {
		k := g.keyFor(c.X, c.Y)
		keys[i] = k
		if i == 0 {
			g.minIx, maxIx = k.ix, k.ix
			g.minIy, maxIy = k.iy, k.iy
		} else {
			g.minIx, maxIx = min(g.minIx, k.ix), max(maxIx, k.ix)
			g.minIy, maxIy = min(g.minIy, k.iy), max(maxIy, k.iy)
		}
		if r := maxRangeM(c.Band); r > maxR {
			maxR = r
		}
	}
	if len(cells) > 0 {
		g.nx, g.ny = maxIx-g.minIx+1, maxIy-g.minIy+1
	}
	g.buckets = make([]gridBucket, g.nx*g.ny)
	for i, c := range cells {
		b := &g.buckets[(keys[i].ix-g.minIx)*g.ny+(keys[i].iy-g.minIy)]
		b.cells = append(b.cells, c)
		if r := maxRangeM(c.Band); r*r > b.reach2 {
			b.reach2 = r * r
		}
	}
	g.reach = int(math.Ceil(maxR/cellSize)) + 1
	return g
}

func (g *cellGrid) keyFor(x, y float64) gridKey {
	return gridKey{int(math.Floor(x / g.cellSize)), int(math.Floor(y / g.cellSize))}
}

// minDist2 returns the squared distance from p to the closest point of
// bucket k's rectangle (0 when p lies inside it). Every cell hashed into k
// lies within the rectangle, so this lower-bounds the distance to any of
// its cells.
func (g *cellGrid) minDist2(k gridKey, p geo.Point) float64 {
	x0 := float64(k.ix) * g.cellSize
	y0 := float64(k.iy) * g.cellSize
	var dx, dy float64
	if p.X < x0 {
		dx = x0 - p.X
	} else if p.X > x0+g.cellSize {
		dx = p.X - (x0 + g.cellSize)
	}
	if p.Y < y0 {
		dy = y0 - p.Y
	} else if p.Y > y0+g.cellSize {
		dy = p.Y - (y0 + g.cellSize)
	}
	return dx*dx + dy*dy
}

// nearby visits every cell that could be within radio range of p, in
// deterministic bucket/insertion order (ix then iy ascending — identical to
// the map-keyed implementation's -reach..reach walk, with out-of-bounds and
// out-of-reach buckets dropped). Buckets whose nearest corner is beyond
// their own longest band reach are skipped whole: their cells would all
// fail the caller's exact per-band range filter anyway.
func (g *cellGrid) nearby(p geo.Point, visit func(*cellular.Cell)) {
	if g.nx == 0 {
		return
	}
	k := g.keyFor(p.X, p.Y)
	ix0 := max(k.ix-g.reach, g.minIx)
	ix1 := min(k.ix+g.reach, g.minIx+g.nx-1)
	iy0 := max(k.iy-g.reach, g.minIy)
	iy1 := min(k.iy+g.reach, g.minIy+g.ny-1)
	for ix := ix0; ix <= ix1; ix++ {
		row := (ix - g.minIx) * g.ny
		for iy := iy0; iy <= iy1; iy++ {
			b := &g.buckets[row+iy-g.minIy]
			if len(b.cells) == 0 || g.minDist2(gridKey{ix, iy}, p) > b.reach2 {
				continue
			}
			for _, c := range b.cells {
				visit(c)
			}
		}
	}
}
