package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// TestRunOnSharedDeployment replays two drives over one topology, the way
// the paper's repeated walking loops reuse one neighbourhood.
func TestRunOnSharedDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	route := geo.GenCityLoop(rng, 3000)
	dep := topology.Generate(topology.OpX(), route, rng, topology.Options{CityDensity: 0.7})

	cfg := Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 3000,
		Laps:         2,
		SpeedMPS:     8.3,
	}
	a, err := RunOn(cfg, dep, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOn(cfg, dep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) == 0 || len(b.Samples) == 0 {
		t.Fatal("empty drives")
	}
	// Same topology, different seeds: cells observed should overlap, but
	// the fading/shadowing differ.
	if a.Samples[100].ServingLTE.RSRP == b.Samples[100].ServingLTE.RSRP {
		t.Error("different seeds produced identical observations")
	}
}

// TestDualModeSurvivesNRInterruptions: in split-bearer mode throughput
// never collapses to zero during 5G-NR handovers (§4.2's key property).
func TestDualModeSurvivesNRInterruptions(t *testing.T) {
	run := func(mode throughput.BearerMode) (nrHOZeroTput, nrHOSamples int) {
		cfg := freewayConfig(topology.OpX(), cellular.ArchNSA, 77)
		cfg.BearerMode = mode
		log, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range log.Samples {
			if !s.InHO || !s.HOType.Is5G() {
				continue
			}
			nrHOSamples++
			if s.TputMbps == 0 {
				nrHOZeroTput++
			}
		}
		return
	}
	scgZero, scgN := run(throughput.ModeSCG)
	dualZero, dualN := run(throughput.ModeSplit)
	if scgN == 0 || dualN == 0 {
		t.Fatal("no 5G HO samples observed")
	}
	if scgZero == 0 {
		t.Error("5G-only mode must stall during NR handovers")
	}
	if dualZero > dualN/10 {
		t.Errorf("dual mode stalled in %d/%d NR-HO samples; the LTE leg should carry through", dualZero, dualN)
	}
}

// TestForcedReleaseBreaksDwell: after an anchor handover the NR leg
// detaches for at least the SCG-change execution window, which is the §6.1
// effective-coverage mechanism.
func TestForcedReleaseBreaksDwell(t *testing.T) {
	log, err := Run(freewayConfig(topology.OpX(), cellular.ArchNSA, 83))
	if err != nil {
		t.Fatal(err)
	}
	// Find an MNBH directly followed by an SCGC and verify a detach gap in
	// the samples between the MNBH completion and the SCGC completion.
	found := false
	for i := 0; i+1 < len(log.Handovers) && !found; i++ {
		h, n := log.Handovers[i], log.Handovers[i+1]
		if h.Type != cellular.HOMNBH || n.Type != cellular.HOSCGC {
			continue
		}
		gapStart := h.Time + h.T2
		gapEnd := n.Time + n.T2
		sawDetached := false
		for _, s := range log.Samples {
			if s.Time >= gapStart && s.Time <= gapEnd && !s.ServingNR.Valid {
				sawDetached = true
				break
			}
		}
		if sawDetached {
			found = true
		}
	}
	if !found {
		t.Error("no MNBH→SCGC chain exhibited an NR detach gap")
	}
}

// TestCellGridFindsAllNearbyCells compares the grid against brute force.
func TestCellGridFindsAllNearbyCells(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	route := geo.GenFreeway(rng, 20000)
	dep := topology.Generate(topology.OpX(), route, rng, topology.Options{})
	grid := newCellGrid(dep.Cells, 1000)
	for _, s := range []float64{0, 5000, 12000, 19000} {
		p := route.At(s)
		want := map[string]bool{}
		for _, c := range dep.Cells {
			if p.Dist(geo.Point{X: c.X, Y: c.Y}) <= maxRangeM(c.Band) {
				want[c.GlobalID()] = true
			}
		}
		got := map[string]bool{}
		grid.nearby(p, func(c *cellular.Cell) {
			if p.Dist(geo.Point{X: c.X, Y: c.Y}) <= maxRangeM(c.Band) {
				got[c.GlobalID()] = true
			}
		})
		if len(got) != len(want) {
			t.Fatalf("at s=%v grid found %d cells, brute force %d", s, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("grid missed cell %s", id)
			}
		}
	}
}

// TestMMWaveChurnExceedsLowBand: the §5.1 band ordering within NSA.
func TestMMWaveChurnExceedsLowBand(t *testing.T) {
	cfg := Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 5000,
		Laps:         3,
		SpeedMPS:     8.3,
		Seed:         23,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	}
	log, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perBandKM := map[cellular.Band]float64{}
	lastOdo := map[cellular.Band]float64{}
	for _, s := range log.Samples {
		if !s.ServingNR.Valid {
			for b := range lastOdo {
				lastOdo[b] = -1
			}
			continue
		}
		b := s.ServingNR.Band
		if lo, ok := lastOdo[b]; ok && lo >= 0 && s.OdometerM > lo {
			perBandKM[b] += (s.OdometerM - lo) / 1000
		}
		for bb := range lastOdo {
			if bb != b {
				lastOdo[bb] = -1
			}
		}
		lastOdo[b] = s.OdometerM
	}
	hoPerBand := map[cellular.Band]int{}
	for _, h := range log.Handovers {
		if h.Type.Is5G() {
			hoPerBand[h.Band]++
		}
	}
	if perBandKM[cellular.BandMMWave] == 0 || hoPerBand[cellular.BandMMWave] == 0 {
		t.Skip("no mmWave coverage on this seed")
	}
	mmwRate := float64(hoPerBand[cellular.BandMMWave]) / perBandKM[cellular.BandMMWave]
	lowRate := float64(hoPerBand[cellular.BandLow]) / perBandKM[cellular.BandLow]
	if mmwRate <= lowRate {
		t.Errorf("mmWave HO rate (%.1f/km) must exceed low-band (%.1f/km)", mmwRate, lowRate)
	}
}
