package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fleet"
)

// loadEnvelope reads one committed BENCH_<date>.json envelope.
func loadEnvelope(path string) (File, error) {
	var f File
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("parse envelope %s: %w", path, err)
	}
	return f, nil
}

// runCompare is the nightly bench-regression gate: it diffs NEW's serving
// throughput against OLD's and fails when fleet_closed or fleet_cluster
// predictions_per_sec dropped by more than the threshold fraction. A
// section absent from either envelope is reported and skipped (older
// envelopes predate some sections), so the gate only ever compares
// like-for-like runs.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldF, err := loadEnvelope(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: compare: %v\n", err)
		return 1
	}
	newF, err := loadEnvelope(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: compare: %v\n", err)
		return 1
	}

	type section struct {
		name     string
		old, new *fleetThroughput
	}
	sections := []section{
		{"fleet_closed", fleetTput(oldF.FleetClosed), fleetTput(newF.FleetClosed)},
		{"fleet_cluster", fleetTput(oldF.FleetCluster), fleetTput(newF.FleetCluster)},
	}
	failed := false
	compared := 0
	for _, s := range sections {
		switch {
		case s.old == nil && s.new == nil:
			fmt.Printf("%-14s absent from both envelopes, skipped\n", s.name)
		case s.old == nil:
			fmt.Printf("%-14s new in %s (%.0f predictions/s), no baseline, skipped\n", s.name, newPath, s.new.pps)
		case s.new == nil:
			fmt.Printf("%-14s missing from %s (baseline %.0f predictions/s), skipped\n", s.name, newPath, s.old.pps)
		case s.old.pps <= 0:
			fmt.Printf("%-14s baseline throughput is zero, skipped\n", s.name)
		default:
			compared++
			delta := s.new.pps/s.old.pps - 1
			status := "ok"
			if delta < -threshold {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-14s %.0f -> %.0f predictions/s (%+.1f%%, limit -%.0f%%) %s\n",
				s.name, s.old.pps, s.new.pps, 100*delta, 100*threshold, status)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: compare: serving throughput regressed beyond %.0f%%\n", 100*threshold)
		return 1
	}
	if compared == 0 {
		fmt.Println("no comparable sections; nothing gated")
	}
	return 0
}

// fleetThroughput is the single number the gate reads from a fleet section.
type fleetThroughput struct{ pps float64 }

// fleetTput extracts it, nil-safe.
func fleetTput(r *fleet.Report) *fleetThroughput {
	if r == nil {
		return nil
	}
	return &fleetThroughput{pps: r.PredictionsPerSec}
}
