package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
)

func writeEnvelope(t *testing.T, dir, name string, f File) string {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func closedEnvelope(pps float64) File {
	return File{Benchmarks: map[string]Result{}, FleetClosed: &fleet.Report{PredictionsPerSec: pps}}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name     string
		old, new File
		want     int
	}{
		{"within threshold", closedEnvelope(1000), closedEnvelope(900), 0},
		{"improvement", closedEnvelope(1000), closedEnvelope(1500), 0},
		{"regression", closedEnvelope(1000), closedEnvelope(800), 1},
		{"just inside the limit", closedEnvelope(1000), closedEnvelope(860), 0},
		{"section new in NEW", File{}, closedEnvelope(1000), 0},
		{"section missing from NEW", closedEnvelope(1000), File{}, 0},
		{"nothing comparable", File{}, File{}, 0},
		{"zero baseline", closedEnvelope(0), closedEnvelope(1000), 0},
	}
	for _, c := range cases {
		oldPath := writeEnvelope(t, dir, c.name+"-old.json", c.old)
		newPath := writeEnvelope(t, dir, c.name+"-new.json", c.new)
		if got := runCompare(oldPath, newPath, 0.15); got != c.want {
			t.Errorf("%s: runCompare = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRunCompareBothSections(t *testing.T) {
	dir := t.TempDir()
	old := closedEnvelope(1000)
	old.FleetCluster = &fleet.Report{PredictionsPerSec: 500}
	// Closed holds, cluster regresses: the gate must still fail.
	nw := closedEnvelope(1000)
	nw.FleetCluster = &fleet.Report{PredictionsPerSec: 300}
	oldPath := writeEnvelope(t, dir, "both-old.json", old)
	newPath := writeEnvelope(t, dir, "both-new.json", nw)
	if got := runCompare(oldPath, newPath, 0.15); got != 1 {
		t.Errorf("cluster regression passed the gate (%d)", got)
	}
}

func TestRunCompareBadFiles(t *testing.T) {
	dir := t.TempDir()
	good := writeEnvelope(t, dir, "good.json", closedEnvelope(1000))
	if got := runCompare(filepath.Join(dir, "missing.json"), good, 0.15); got != 1 {
		t.Error("missing OLD accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runCompare(good, bad, 0.15); got != 1 {
		t.Error("unparseable NEW accepted")
	}
}

// TestRunCompareAgainstCommittedBaseline feeds the gate the repo's own
// committed envelopes: self-comparison must always pass (delta 0).
func TestRunCompareAgainstCommittedBaseline(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Skip("no committed BENCH_*.json envelopes")
	}
	latest := matches[len(matches)-1]
	if got := runCompare(latest, latest, 0.15); got != 0 {
		t.Errorf("self-comparison of %s failed the gate", latest)
	}
}
