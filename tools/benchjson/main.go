// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document on stdout, so benchmark runs can be committed
// and diffed (`make bench-json` writes BENCH_<utc-date>.json).
//
// For every benchmark line it records ns/op, B/op, allocs/op, and any
// extra metrics reported via b.ReportMetric (e.g. HO/km, F1). Context
// lines (goos/goarch/pkg/cpu) are carried into the envelope. With
// -fleet report.json (a cmd/prognosload -report file), the fleet's serving
// latency/throughput report is merged into the envelope under "fleet", and
// -fleet-closed merges a second report under "fleet_closed" — the
// closed-loop peak-capacity run (binary framing, pipelining window; see
// EXPERIMENTS.md §Binary vs JSONL framing) whose predictions_per_sec is
// the serving path's headline number — -fleet-cluster merges the
// 3-node cluster pass under "fleet_cluster", and -fleet-crash the
// node-kill crash pass (cmd/prognosload -node-kill: failovers,
// replication pushes/bytes, warm-resume ratio through a hard node crash)
// under "fleet_crash". One BENCH_<date>.json thus
// tracks the sim substrate and the serving path side by side. Chaos-run reports
// carry their resilience counters
// (lost_samples, reconnects, resumed_sessions, cold_resumes, chaos_seed,
// chaos_faults) in the same section, so reconnect behaviour is diffable
// across commits too. -sweep sweep.json (a `vivisect sweep -report` file)
// merges the policy-portfolio sweep report under "policy_sweep", folding
// convergence/re-convergence/F1-floor numbers into the same envelope.
// -holoop holoop.json (a `vivisect holoop -report` file) merges the
// adaptive-vs-static closed-loop handover comparison under "ho_adaptive".
//
// Regression-gate mode: `benchjson -compare [-threshold 0.15] OLD NEW`
// (flags before the positional paths) reads two envelopes and exits
// non-zero if NEW's serving
// throughput (predictions_per_sec in fleet_closed and fleet_cluster)
// regressed by more than the threshold fraction relative to OLD. Sections
// missing from either file are skipped, so the gate tolerates older
// envelopes that predate a section. Stdin is not read in this mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

// Result holds one benchmark's parsed measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"b_per_op"`
	AllocsPerO float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the envelope written to stdout.
type File struct {
	DateUTC    string            `json:"date_utc"`
	GoVersion  string            `json:"go_version"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// Fleet is the open-loop serving-path load report merged in via
	// -fleet; FleetClosed the closed-loop capacity report via -fleet-closed;
	// FleetCluster the multi-node cluster report via -fleet-cluster (the
	// 3-node closed-loop pass `make bench-json` runs, carrying per-node
	// rows, migration counters, and the warm-resume ratio).
	Fleet        *fleet.Report `json:"fleet,omitempty"`
	FleetClosed  *fleet.Report `json:"fleet_closed,omitempty"`
	FleetCluster *fleet.Report `json:"fleet_cluster,omitempty"`
	// FleetCrash is the node-kill crash-fault pass via -fleet-crash: one
	// node hard-killed mid-load, sessions failed over from replicated state.
	FleetCrash *fleet.Report `json:"fleet_crash,omitempty"`
	// PolicySweep is the carrier-policy portfolio sweep report merged in
	// via -sweep (a `vivisect sweep -report` file): convergence and
	// re-convergence statistics over a generated carrier population.
	PolicySweep *metrics.SweepReport `json:"policy_sweep,omitempty"`
	// HOAdaptive is the adaptive-vs-static closed-loop handover comparison
	// merged in via -holoop (a `vivisect holoop -report` file).
	HOAdaptive *metrics.HOLoopReport `json:"ho_adaptive,omitempty"`
}

// loadFleetReport reads one cmd/prognosload -report file.
func loadFleetReport(path string) *fleet.Report {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var rep fleet.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse fleet report %s: %v\n", path, err)
		os.Exit(1)
	}
	return &rep
}

func main() {
	fleetPath := flag.String("fleet", "", "merge a cmd/prognosload -report JSON file into the envelope")
	fleetClosedPath := flag.String("fleet-closed", "", "merge a closed-loop -report JSON file under fleet_closed")
	fleetClusterPath := flag.String("fleet-cluster", "", "merge a multi-node cluster -report JSON file under fleet_cluster")
	fleetCrashPath := flag.String("fleet-crash", "", "merge a node-kill crash -report JSON file under fleet_crash")
	sweepPath := flag.String("sweep", "", "merge a `vivisect sweep -report` JSON file under policy_sweep")
	holoopPath := flag.String("holoop", "", "merge a `vivisect holoop -report` JSON file under ho_adaptive")
	compare := flag.Bool("compare", false, "compare two envelopes (OLD NEW args) and fail on serving-throughput regression")
	threshold := flag.Float64("threshold", 0.15, "with -compare: max tolerated fractional predictions_per_sec drop")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two args: OLD NEW")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	out := File{
		DateUTC:    time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		Context:    map[string]string{},
		Benchmarks: map[string]Result{},
	}
	if *fleetPath != "" {
		out.Fleet = loadFleetReport(*fleetPath)
	}
	if *fleetClosedPath != "" {
		out.FleetClosed = loadFleetReport(*fleetClosedPath)
	}
	if *fleetClusterPath != "" {
		out.FleetCluster = loadFleetReport(*fleetClusterPath)
	}
	if *fleetCrashPath != "" {
		out.FleetCrash = loadFleetReport(*fleetCrashPath)
	}
	if *sweepPath != "" {
		rep, err := metrics.ReadSweepFile(*sweepPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		out.PolicySweep = &rep
	}
	if *holoopPath != "" {
		rep, err := metrics.ReadHOLoopFile(*holoopPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		out.HOAdaptive = &rep
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			out.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 && out.Fleet == nil && out.PolicySweep == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one testing benchmark result line:
//
//	BenchmarkName-8  12  97819667 ns/op  3.600 HO/km  9280474 B/op  1466 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name; value/unit pairs
// beyond the standard three land in Metrics.
func parseBenchLine(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, fmt.Errorf("too few fields")
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("iterations: %w", err)
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerO = val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return name, res, nil
}
