# Development targets; CI runs `make ci` (see .github/workflows/ci.yml).

.PHONY: ci check race test cover bench bench-json loadtest chaos protocol-compat cluster crashtest sweep holoop

# CI umbrella: everything the merge gate needs, cheapest signal first.
ci: check race cover

# Static gate plus the smokes: vet, formatting, a full build, the fast
# test suite, and finally the expensive chaos fleet. Ordering matters —
# a unit-test failure should surface in seconds, not after a 5s
# race-instrumented fleet run.
check:
	go vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi
	go build ./...
	go test -short ./...
	$(MAKE) chaos
	$(MAKE) cluster
	$(MAKE) crashtest
	$(MAKE) sweep
	$(MAKE) holoop

# Race-enabled short suite: guards the parallel experiment engine. The
# experiments package trims to a fast experiment subset under the race
# build tag to keep the detector's overhead inside test timeouts.
race:
	go test -race -short ./...

test:
	go test ./...

# Coverage gate: the full suite must keep total statement coverage at or
# above COVER_FLOOR. Raise the floor when coverage durably improves;
# never lower it to make a PR pass. (Measured 80.3% when the gate was
# introduced; floored at 80.0 to absorb sub-tenth noise from timing-
# dependent paths.)
COVER_FLOOR ?= 80.0
cover:
	go test -count=1 -coverprofile=cover.out ./...
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

bench:
	go test -bench=. -benchmem

# Serving-path smoke fleet: a short open-loop run under the race detector
# against an in-process server. Fails (exit 1) on any session error.
loadtest:
	go run -race ./cmd/prognosload -selfserve -ues 64 -duration 10s \
		-mode open -ramp 1s

# Resilience smoke: the 64-UE fleet through the deterministic chaos proxy
# under the race detector. The seeded fault plan mixes RST-style resets and
# fragmented writes (plus stalls, latency, accept failures); prognosload
# exits non-zero on any lost sample or server session error, so this target
# is the replayable proof that reconnect + resume absorbs transport faults.
chaos:
	go run -race ./cmd/prognosload -selfserve -ues 64 -duration 5s \
		-mode open -ramp 1s -chaos -chaos-seed 7 \
		-chaos-reset 0.2 -chaos-partial 0.3 -chaos-stall 0.1 \
		-chaos-latency 0.25 -chaos-accept 0.02

# Cluster smoke: a 64-UE open-loop fleet over an in-process 3-node
# cluster under the race detector, with every node drain-restarted once
# mid-run. prognosload exits non-zero on any lost sample, any session
# error, or a warm-resume ratio below 0.9 — the replayable proof that
# consistent-hash routing plus warm migration survives a rolling restart
# of the whole cluster (EXPERIMENTS.md §Rolling restart).
cluster:
	go run -race ./cmd/prognosload -cluster 3 -ues 64 -duration 5s \
		-mode open -ramp 1s -rolling-restart -min-warm-resume 0.9

# Crash-fault smoke: a 64-UE closed-loop fleet over an in-process 3-node
# cluster under the race detector, with one node hard-killed mid-run (no
# drain — connections RST, the node's local state dies with it) and
# revived empty later. Survival rides on async warm-state replication
# plus detector-confirmed failover (docs/ARCHITECTURE.md §Failure model):
# prognosload exits non-zero on any lost sample, any session error, or a
# warm-resume ratio below 0.9, so this target is the replayable proof of
# the bounded-staleness crash contract.
crashtest:
	go run -race ./cmd/prognosload -cluster 3 -ues 64 -duration 5s \
		-mode closed -framing binary -window 4 -ramp 1s -node-kill \
		-min-warm-resume 0.9

# Wire-protocol interop smoke: a mixed-framing fleet (even UEs binary,
# odd JSONL — see docs/PROTOCOL.md) with a pipelining window, against an
# in-process server under the race detector. Every sample must earn a
# prediction whichever framing carried it; prognosload exits non-zero
# otherwise. CI runs this as its own job.
protocol-compat:
	go run -race ./cmd/prognosload -selfserve -ues 16 -duration 5s \
		-mode closed -ramp 500ms -framing mixed -window 4

# Policy-sweep smoke: a small drift sweep under the race detector. The
# sweep fans generated carriers across workers while each worker runs a
# full sim + online-learner replay, so this also guards the sweep
# runner's per-spec RNG ownership (the -report bytes must be identical
# at any -jobs; the experiments test suite pins that, this target proves
# the CLI path end to end and fails on any per-carrier error).
SWEEP_CARRIERS ?= 8
sweep:
	go run -race ./cmd/vivisect sweep -carriers $(SWEEP_CARRIERS) -drift \
		-seed 1 -drive-seconds 120 -jobs 4

# Closed-loop smoke: the adaptive-vs-static handover comparison as a
# first-class gated scenario, under the race detector. 64 UEs drive the
# city reference loop twice each (identical seed per pair — static
# baseline vs prediction-driven adaptive control); -gate makes vivisect
# exit non-zero unless the adaptive arm's fleet-aggregate ping-pong rate
# is strictly below the static arm's while its in-loop prediction F1
# stays within the epsilon of the offline-replay baseline
# (EXPERIMENTS.md §Closed-loop adaptive handover).
HOLOOP_UES ?= 64
holoop:
	go run -race ./cmd/vivisect holoop -ues $(HOLOOP_UES) \
		-seed 1 -drive-seconds 120 -gate

# Perf trajectory tracking: run the substrate micro-benchmarks plus two
# serving-path fleets and commit the result as BENCH_<utc-date>.json
# (see docs/ARCHITECTURE.md §Performance for how to read and compare the
# files). The open-loop report lands in the envelope under "fleet", the
# closed-loop capacity run (binary framing, window 16 — the serving
# path's headline predictions/s) under "fleet_closed", and the 3-node
# cluster closed-loop pass under "fleet_cluster" (per-node rows, migration
# counters, warm-resume ratio; see EXPERIMENTS.md §Cluster capacity), and
# the node-kill crash pass under "fleet_crash" (failovers, replication
# pushes/bytes, warm-resume ratio through a hard node crash).
# A policy sweep (100 generated carriers with mid-run drift; see
# EXPERIMENTS.md §Policy sweeps) lands under "policy_sweep", so the F1
# floor and re-convergence numbers are tracked commit over commit too,
# and the adaptive-vs-static closed-loop comparison (vivisect holoop)
# under "ho_adaptive", so the ping-pong reduction is as well.
# `date -u` pins the filename to UTC so a nightly run names the same file
# no matter which timezone the runner happens to be in.
BENCH_PATTERN ?= ^(BenchmarkSimFreewayKm|BenchmarkPrognosReplay|BenchmarkPatternMatch)$$
FLEET_REPORT ?= /tmp/benchjson-fleet.json
FLEET_CLOSED_REPORT ?= /tmp/benchjson-fleet-closed.json
FLEET_CLUSTER_REPORT ?= /tmp/benchjson-fleet-cluster.json
FLEET_CRASH_REPORT ?= /tmp/benchjson-fleet-crash.json
SWEEP_REPORT ?= /tmp/benchjson-sweep.json
HOLOOP_REPORT ?= /tmp/benchjson-holoop.json
bench-json:
	go run ./cmd/prognosload -selfserve -ues 64 -duration 10s -mode open \
		-ramp 1s -report $(FLEET_REPORT)
	go run ./cmd/prognosload -selfserve -ues 64 -duration 10s -mode closed \
		-ramp 1s -framing binary -window 16 -report $(FLEET_CLOSED_REPORT)
	go run ./cmd/prognosload -cluster 3 -ues 64 -duration 10s -mode closed \
		-ramp 1s -framing binary -window 16 -report $(FLEET_CLUSTER_REPORT)
	go run ./cmd/prognosload -cluster 3 -ues 64 -duration 10s -mode closed \
		-ramp 1s -framing binary -window 4 -node-kill -min-warm-resume 0.9 \
		-report $(FLEET_CRASH_REPORT)
	go run ./cmd/vivisect sweep -carriers 100 -drift -seed 1 \
		-report $(SWEEP_REPORT)
	go run ./cmd/vivisect holoop -ues 64 -seed 1 -drive-seconds 120 \
		-gate -report $(HOLOOP_REPORT)
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . \
		| go run ./tools/benchjson -fleet $(FLEET_REPORT) \
			-fleet-closed $(FLEET_CLOSED_REPORT) \
			-fleet-cluster $(FLEET_CLUSTER_REPORT) \
			-fleet-crash $(FLEET_CRASH_REPORT) \
			-sweep $(SWEEP_REPORT) \
			-holoop $(HOLOOP_REPORT) \
		> BENCH_$$(date -u +%Y-%m-%d).json
	@ls BENCH_$$(date -u +%Y-%m-%d).json
