# Development targets; CI runs `make check race`.

.PHONY: check race test bench bench-json

# Static gate: vet, formatting, and a full build.
check:
	go vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi
	go build ./...

# Race-enabled short suite: guards the parallel experiment engine. The
# experiments package trims to a fast experiment subset under the race
# build tag to keep the detector's overhead inside test timeouts.
race:
	go test -race -short ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# Perf trajectory tracking: run the substrate micro-benchmarks and commit
# the result as BENCH_<utc-date>.json (see docs/ARCHITECTURE.md §Performance
# for how to read and compare the files).
BENCH_PATTERN ?= ^(BenchmarkSimFreewayKm|BenchmarkPrognosReplay|BenchmarkPatternMatch)$$
bench-json:
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . \
		| go run ./tools/benchjson > BENCH_$$(date -u +%Y-%m-%d).json
	@ls BENCH_$$(date -u +%Y-%m-%d).json
