// Command tracegen generates synthetic drive-test datasets as JSONL logs
// in the trace package's record format — the building block for offline
// analysis, the §7.3 walking datasets, and feeding external tools.
//
// Usage:
//
//	tracegen -carrier OpX -arch NSA -route city -length 4000 -laps 4 \
//	         -speed 8.3 -seed 1 -o drive.jsonl
//
// With -o "-" (default) the log streams to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	carrier := flag.String("carrier", "OpX", "carrier profile: OpX, OpY, OpZ")
	archStr := flag.String("arch", "NSA", "architecture: LTE, NSA, SA")
	route := flag.String("route", "freeway", "route kind: freeway, city")
	length := flag.Float64("length", 20000, "route length / loop perimeter, metres")
	laps := flag.Int("laps", 1, "laps (loops only)")
	speed := flag.Float64("speed", 29, "speed, m/s (29≈freeway, 8.3≈city, 1.4≈walking)")
	seed := flag.Int64("seed", 1, "random seed")
	density := flag.Float64("density", 1.0, "tower density scale (<1 = denser)")
	skipMMW := flag.Bool("no-mmwave", false, "skip mmWave deployment")
	out := flag.String("o", "-", "output path (- for stdout)")
	flag.Parse()

	var prof repro.CarrierProfile
	switch *carrier {
	case "OpX":
		prof = repro.OpX()
	case "OpY":
		prof = repro.OpY()
	case "OpZ":
		prof = repro.OpZ()
	default:
		fatal("unknown carrier %q", *carrier)
	}
	var arch repro.Arch
	switch strings.ToUpper(*archStr) {
	case "LTE":
		arch = repro.ArchLTE
	case "NSA":
		arch = repro.ArchNSA
	case "SA":
		arch = repro.ArchSA
	default:
		fatal("unknown arch %q", *archStr)
	}
	kind := repro.RouteFreeway
	if strings.HasPrefix(*route, "city") {
		kind = repro.RouteCityLoop
	}

	log, err := repro.Drive(repro.DriveConfig{
		Carrier:      prof,
		Arch:         arch,
		RouteKind:    kind,
		RouteLengthM: *length,
		Laps:         *laps,
		SpeedMPS:     *speed,
		Seed:         *seed,
		TopoOpts:     repro.TopologyOptions{CityDensity: *density, SkipMMWave: *skipMMW},
	})
	if err != nil {
		fatal("%v", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := log.Write(w); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %.1f km, %d samples, %d reports, %d handovers\n",
		log.DistanceKM(), len(log.Samples), len(log.Reports), len(log.Handovers))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
