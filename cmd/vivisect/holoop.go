package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/policygen"
)

// holoopArgs carries the holoop-mode flag values.
type holoopArgs struct {
	seed         int64
	ues          int
	jobs         int
	driveSeconds float64
	gate         bool
	f1Epsilon    float64
	earlyPrep    bool
	skipAhead    bool
	adaptTTT     bool
	report       string
}

// runHOLoop executes the adaptive-vs-static closed-loop comparison and, under
// -gate, enforces the CI acceptance bar: the adaptive arm must show a lower
// ping-pong rate than the static arm while keeping its event-level F1 within
// f1Epsilon of the static (offline-replay) baseline. Stdout and the JSON
// report are byte-identical at any -jobs value.
func runHOLoop(a holoopArgs) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "vivisect: holoop: %v\n", err)
		return 1
	}
	spec := policygen.DefaultAdaptiveSpec()
	spec.EarlyPrep = a.earlyPrep
	spec.SkipAhead = a.skipAhead
	spec.AdaptTTT = a.adaptTTT

	start := time.Now()
	var done atomic.Int64
	rep, err := experiments.RunHOLoop(context.Background(), experiments.HOLoopConfig{
		UEs:          a.ues,
		Seed:         a.seed,
		Jobs:         a.jobs,
		DriveSeconds: a.driveSeconds,
		Adaptive:     spec,
		OnUE: func(u metrics.HOLoopUE) {
			n := done.Add(1)
			if u.Error != "" {
				fmt.Fprintf(os.Stderr, "[%d/%d] ue%03d FAILED: %s\n", n, a.ues, u.Index, u.Error)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] ue%03d pp %d->%d preps=%d skips=%d reconf=%d\n",
				n, a.ues, u.Index, u.Static.PingPongs, u.Adaptive.PingPongs,
				u.EarlyPreps, u.SkipAheads, u.Reconfigs)
		},
	})
	if err != nil {
		return fail(err)
	}
	wall := time.Since(start)

	s := rep.Summary
	fmt.Printf("closed-loop handover control: seed %d, %d UEs, %s/%s, controls prep=%v skip=%v ttt=%v\n",
		rep.Seed, s.UEs, rep.Carrier, rep.Arch, rep.EarlyPrep, rep.SkipAhead, rep.AdaptTTT)
	fmt.Printf("  handovers         static %d, adaptive %d\n", s.StaticHandovers, s.AdaptiveHandovers)
	fmt.Printf("  ping-pong rate    static %.4f (%d), adaptive %.4f (%d)  [%+.1f%%]\n",
		s.StaticPingPongRate, s.StaticPingPongs, s.AdaptivePingPongRate, s.AdaptivePingPongs,
		-100*s.PingPongReduction)
	fmt.Printf("  mean interrupt    static %.1f ms, adaptive %.1f ms\n",
		s.StaticMeanInterruptMS, s.AdaptiveMeanInterruptMS)
	fmt.Printf("  mean throughput   static %.2f Mbps, adaptive %.2f Mbps (stall %.4f -> %.4f)\n",
		s.StaticMeanTputMbps, s.AdaptiveMeanTputMbps, s.StaticStallFrac, s.AdaptiveStallFrac)
	fmt.Printf("  prediction F1     static %.3f (offline replay), adaptive %.3f (in-loop)\n",
		s.StaticF1, s.AdaptiveF1)
	fmt.Printf("  controller        %d early-preps (%.0f ms saved), %d skip-aheads, %d reconfigs\n",
		s.EarlyPreps, s.PrepSavedMS, s.SkipAheads, s.Reconfigs)
	if s.Errors > 0 {
		fmt.Printf("  errors            %d\n", s.Errors)
	}
	fmt.Fprintf(os.Stderr, "holoop: %d UE pairs in %v wall\n", s.UEs, wall.Round(time.Millisecond))

	if a.report != "" {
		if err := rep.WriteFile(a.report); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "holoop report written to %s\n", a.report)
	}
	if s.Errors > 0 {
		return 1
	}
	if a.gate {
		ok := true
		if s.AdaptivePingPongRate >= s.StaticPingPongRate {
			fmt.Fprintf(os.Stderr, "holoop: GATE FAIL: adaptive ping-pong rate %.4f not below static %.4f\n",
				s.AdaptivePingPongRate, s.StaticPingPongRate)
			ok = false
		}
		if s.AdaptiveF1 < s.StaticF1-a.f1Epsilon {
			fmt.Fprintf(os.Stderr, "holoop: GATE FAIL: adaptive F1 %.3f below static %.3f - epsilon %.3f\n",
				s.AdaptiveF1, s.StaticF1, a.f1Epsilon)
			ok = false
		}
		if !ok {
			return 1
		}
		fmt.Fprintf(os.Stderr, "holoop: gate OK (ping-pong %.4f < %.4f, F1 within %.3f)\n",
			s.AdaptivePingPongRate, s.StaticPingPongRate, a.f1Epsilon)
	}
	return 0
}
