// Command vivisect regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	vivisect list                 # list available experiments
//	vivisect <id> [...]           # run one or more experiments (e.g. fig8)
//	vivisect all                  # run everything in paper order
//	vivisect trace                # emit one drive's handover event trace
//	vivisect sweep                # fuzz generated carrier-policy portfolios
//	vivisect holoop               # adaptive-vs-static closed-loop comparison
//
// Flags:
//
//	-seed N         random seed (default 1)
//	-scale F        drive-length scale factor (default 1.0)
//	-jobs N         worker-pool size (default GOMAXPROCS; 1 = sequential)
//	-report FILE    write a per-experiment metrics report as JSON
//	-failfast       stop scheduling experiments after the first error
//	-cpuprofile F   write a pprof CPU profile of the run to F
//	-memprofile F   write a pprof heap profile (taken at exit) to F
//
// Trace mode (`vivisect trace`) runs a single simulated drive with an
// obs.Tracer attached and writes its handover-trigger event stream as
// JSONL — the same schema the serving daemon exposes at /events, so one
// toolchain debugs both the simulator's mobility decisions and the live
// serving pipeline. -carrier/-arch/-route/-length shape the drive and
// -trace-file picks the output (stdout by default). The stream carries
// sim-time coordinates only (no wall clock), so equal seeds give
// byte-identical traces.
//
// Sweep mode (`vivisect sweep`) generates -carriers policy portfolios from
// -seed (internal/policygen), drives each under an online Prognos learner,
// and reports time-to-F1-threshold, the F1 floor, and — with -drift — the
// post-rewrite re-convergence time. -report writes the full JSON report
// (byte-identical at any -jobs); -ops-addr serves live sweep progress on
// the ops plane while the run is underway.
//
// Holoop mode (`vivisect holoop`) closes the prediction loop: -ues city
// drives are each simulated twice over identical seed/route/deployment —
// once under the static carrier policy, once with Prognos forecasts steering
// a ran.AdaptiveController (early-prep, skip-ahead, TTT/hysteresis
// adaptation; -early-prep/-skip-ahead/-adapt-ttt toggle them) — and the
// ping-pong rate, interruption time, QoE and in-loop F1 of the two arms are
// compared. -gate turns the comparison into a CI check: exit non-zero unless
// the adaptive arm's ping-pong rate is below the static arm's while its F1
// stays within -f1-epsilon. -report writes the full JSON report
// (byte-identical at any -jobs).
//
// Tables are printed to stdout in registry order and are byte-identical
// for any -jobs value at the same seed; live progress and the run summary
// go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "experiment scale factor")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker-pool size (1 = sequential)")
	report := flag.String("report", "", "write a JSON metrics report to this file")
	failfast := flag.Bool("failfast", false, "cancel pending experiments after the first error")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (at exit) to this file")
	carrier := flag.String("carrier", "OpX", "trace mode: carrier profile (OpX/OpY/OpZ)")
	archName := flag.String("arch", "NSA", "trace mode: architecture (LTE/NSA/SA)")
	routeName := flag.String("route", "freeway", "trace mode: drive route kind (freeway/city-loop)")
	lengthM := flag.Float64("length", 20000, "trace mode: route length in metres")
	traceFile := flag.String("trace-file", "", "trace mode: write the event JSONL here (default stdout)")
	carriers := flag.Int("carriers", 100, "sweep mode: number of generated carrier portfolios")
	drift := flag.Bool("drift", false, "sweep mode: rewrite each carrier's policy mid-run")
	driveSeconds := flag.Float64("drive-seconds", 600, "sweep mode: minimum sim seconds per carrier")
	f1Threshold := flag.Float64("f1-threshold", 0.6, "sweep mode: convergence F1 bar")
	opsAddr := flag.String("ops-addr", "", "sweep mode: serve live sweep metrics on this address")
	ues := flag.Int("ues", 64, "holoop mode: number of UE drive pairs")
	gate := flag.Bool("gate", false, "holoop mode: exit non-zero unless adaptive beats static on ping-pong with F1 within -f1-epsilon")
	f1Epsilon := flag.Float64("f1-epsilon", 0.05, "holoop mode: max tolerated adaptive F1 shortfall under -gate")
	earlyPrep := flag.Bool("early-prep", true, "holoop mode: enable predictive early preparation")
	skipAhead := flag.Bool("skip-ahead", true, "holoop mode: enable skip-ahead target selection")
	adaptTTT := flag.Bool("adapt-ttt", true, "holoop mode: enable adaptive TTT/hysteresis")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale}
	var specs []experiments.Spec
	switch args[0] {
	case "list":
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Paper)
		}
		return
	case "trace":
		os.Exit(runTrace(*seed, *carrier, *archName, *routeName, *lengthM, *traceFile))
	case "sweep":
		// Accept flags after the subcommand too (`vivisect sweep -carriers
		// 100 ...`): flag.Parse stops at the first positional argument, so
		// re-parse the remainder into the same flag set.
		if err := flag.CommandLine.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		os.Exit(runSweep(sweepArgs{
			seed: *seed, carriers: *carriers, drift: *drift, jobs: *jobs,
			driveSeconds: *driveSeconds, f1Threshold: *f1Threshold,
			report: *report, opsAddr: *opsAddr,
		}))
	case "holoop":
		if err := flag.CommandLine.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		os.Exit(runHOLoop(holoopArgs{
			seed: *seed, ues: *ues, jobs: *jobs, driveSeconds: *driveSeconds,
			gate: *gate, f1Epsilon: *f1Epsilon,
			earlyPrep: *earlyPrep, skipAhead: *skipAhead, adaptTTT: *adaptTTT,
			report: *report,
		}))
	case "all":
		specs = experiments.All()
	default:
		bad := 0
		for _, id := range args {
			s, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vivisect: %v\n", err)
				bad++
				continue
			}
			specs = append(specs, s)
		}
		if bad > 0 {
			os.Exit(1)
		}
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vivisect: %v\n", err)
		os.Exit(1)
	}
	code := run(specs, opts, *jobs, *failfast, *report)
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "vivisect: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// runTrace simulates one drive with an event tracer attached and writes
// the handover-trigger stream as JSONL. The tracer's wall clock is
// disabled so the output is a pure function of the configuration — equal
// seeds diff clean.
func runTrace(seed int64, carrierName, archName, routeName string, lengthM float64, outPath string) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "vivisect: trace: %v\n", err)
		return 1
	}
	carrier, err := topology.CarrierByName(carrierName)
	if err != nil {
		return fail(err)
	}
	arch, err := cellular.ParseArch(archName)
	if err != nil {
		return fail(err)
	}
	route, err := geo.ParseRouteKind(routeName)
	if err != nil {
		return fail(err)
	}

	// Size the ring to the drive: handover counts grow with route length
	// (roughly one HO per 100 m in dense city deployments), so 1<<16
	// comfortably holds any configurable drive without ever dropping.
	tracer := obs.NewTracer(1 << 16)
	tracer.SetWallClock(nil)
	log, err := sim.Run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    route,
		RouteLengthM: lengthM,
		Seed:         seed,
		Tracer:       tracer,
	})
	if err != nil {
		return fail(err)
	}

	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := tracer.WriteJSONL(w); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "trace: %s/%s %s drive, seed %d: %d samples, %d reports, %d handovers, %d events\n",
		carrier.Name, arch, route, seed,
		len(log.Samples), len(log.Reports), len(log.Handovers), tracer.Total())
	return 0
}

// sweepArgs carries the sweep-mode flag values.
type sweepArgs struct {
	seed         int64
	carriers     int
	drift        bool
	jobs         int
	driveSeconds float64
	f1Threshold  float64
	report       string
	opsAddr      string
}

// runSweep executes a carrier-policy portfolio sweep: generate a seeded
// population, drive each carrier under an online learner, and report the
// convergence statistics. The JSON report (and the stdout summary) are
// byte-identical at any -jobs value.
func runSweep(a sweepArgs) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "vivisect: sweep: %v\n", err)
		return 1
	}
	var stats metrics.SweepStats
	if a.opsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterSweepMetrics(reg, stats.Snapshot)
		plane, err := obs.Listen(a.opsAddr, obs.Config{Registry: reg})
		if err != nil {
			return fail(err)
		}
		defer plane.Close()
		fmt.Fprintf(os.Stderr, "sweep: ops plane on http://%s/metrics\n", plane.Addr())
	}

	start := time.Now()
	var done atomic.Int64
	rep, err := experiments.RunSweep(context.Background(), experiments.SweepConfig{
		Carriers:     a.carriers,
		Seed:         a.seed,
		Drift:        a.drift,
		Jobs:         a.jobs,
		DriveSeconds: a.driveSeconds,
		F1Threshold:  a.f1Threshold,
		Stats:        &stats,
		OnCarrier: func(c metrics.SweepCarrier) {
			n := done.Add(1)
			status := "converged"
			switch {
			case c.Error != "":
				status = "FAILED: " + c.Error
			case !c.Converged:
				status = "did not converge"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", n, a.carriers, c.Name, status)
		},
	})
	if err != nil {
		return fail(err)
	}
	wall := time.Since(start)

	s := rep.Summary
	fmt.Printf("policy sweep: seed %d, %d carriers, drift=%v, F1 bar %.2f\n",
		rep.Seed, s.Carriers, rep.Drift, rep.F1Threshold)
	fmt.Printf("  converged        %d/%d (median %.0fs to F1, p90 %.0fs)\n",
		s.Converged, s.Carriers-s.Errors, s.MedianTimeToF1S, s.P90TimeToF1S)
	if rep.Drift {
		fmt.Printf("  re-converged     %d/%d after drift at %.0fs (median %.0fs, p90 %.0fs)\n",
			s.Reconverged, s.Carriers-s.Errors, rep.DriftAtS, s.MedianReconvergeS, s.P90ReconvergeS)
	}
	fmt.Printf("  F1 floor         %.3f (p10 %.3f, median %.3f)\n", s.F1Floor, s.F1FloorP10, s.F1FloorMedian)
	fmt.Printf("  median final F1  %.3f\n", s.MedianFinalF1)
	if s.Errors > 0 {
		fmt.Printf("  errors           %d\n", s.Errors)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d carriers in %v wall\n", s.Carriers, wall.Round(time.Millisecond))

	if a.report != "" {
		if err := rep.WriteFile(a.report); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "sweep report written to %s\n", a.report)
	}
	if s.Errors > 0 {
		return 1
	}
	return 0
}

// startProfiles begins CPU profiling (when requested) and returns a stop
// function that finishes the CPU profile and snapshots the heap profile.
// Profiles are written on normal exit only, matching `go test`'s
// -cpuprofile/-memprofile behaviour.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // capture the settled live heap, as `go test` does
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// run executes the batch and prints tables (stdout), progress and summary
// (stderr). It returns the process exit code.
func run(specs []experiments.Spec, opts experiments.Options, jobs int, failfast bool, reportPath string) int {
	events := make(chan experiments.Event)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range events {
			switch {
			case ev.Skipped:
				fmt.Fprintf(os.Stderr, "[%d/%d] %-8s skipped\n", ev.Done, ev.Total, ev.ID)
			case ev.Err != nil:
				fmt.Fprintf(os.Stderr, "[%d/%d] %-8s FAILED: %v\n", ev.Done, ev.Total, ev.ID, ev.Err)
			default:
				fmt.Fprintf(os.Stderr, "[%d/%d] %-8s ok  %8s  %3d rows  (%s)\n",
					ev.Done, ev.Total, ev.ID, ev.Duration.Round(time.Millisecond), ev.Rows, ev.Paper)
			}
		}
	}()

	r := experiments.Runner{Jobs: jobs, Options: opts, FailFast: failfast, Events: events}
	start := time.Now()
	results, err := r.Run(context.Background(), specs)
	wall := time.Since(start)
	close(events)
	wg.Wait()

	// Tables in spec order: stdout stays byte-identical across -jobs.
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "vivisect: %s: %v\n", res.Spec.ID, res.Err)
			continue
		}
		fmt.Print(res.Table.Render())
		fmt.Println()
	}

	summarize(results, wall)

	if reportPath != "" {
		rep := experiments.BuildReport(opts, jobs, wall, results)
		if werr := rep.WriteFile(reportPath); werr != nil {
			fmt.Fprintf(os.Stderr, "vivisect: %v\n", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "metrics report written to %s\n", reportPath)
	}

	if err != nil {
		return 1
	}
	return 0
}

// summarize prints the per-experiment summary table to stderr.
func summarize(results []experiments.Result, wall time.Duration) {
	t := experiments.Table{
		ID:     "summary",
		Title:  "run summary",
		Header: []string{"id", "paper", "wall", "rows", "drives", "HOs", "status"},
	}
	var drives, hos int64
	failed, skipped := 0, 0
	for _, res := range results {
		m := res.Metrics
		status := "ok"
		switch {
		case res.Skipped:
			status, skipped = "skipped", skipped+1
		case res.Err != nil:
			status, failed = "FAILED", failed+1
		}
		drives += m.Drives
		hos += m.HOEvents
		t.Rows = append(t.Rows, []string{
			m.ID, m.Paper,
			(time.Duration(m.WallMS * float64(time.Millisecond))).Round(time.Millisecond).String(),
			fmt.Sprint(m.Rows), fmt.Sprint(m.Drives), fmt.Sprint(m.HOEvents), status,
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d experiments in %v wall (%d drives, %d handover events; %d failed, %d skipped)",
		len(results), wall.Round(time.Millisecond), drives, hos, failed, skipped))
	fmt.Fprint(os.Stderr, t.Render())
}

func usage() {
	fmt.Fprintf(os.Stderr, `vivisect regenerates the paper's tables and figures.

usage: vivisect [flags] list | all | trace | <experiment-id> [...]

flags:
`)
	flag.PrintDefaults()
}
