// Command vivisect regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	vivisect list                 # list available experiments
//	vivisect <id> [...]           # run one or more experiments (e.g. fig8)
//	vivisect all                  # run everything in paper order
//
// Flags:
//
//	-seed N     random seed (default 1)
//	-scale F    drive-length scale factor (default 1.0)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "experiment scale factor")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale}
	switch args[0] {
	case "list":
		for _, s := range experiments.All() {
			fmt.Printf("%-8s %s\n", s.ID, s.Paper)
		}
		return
	case "all":
		failed := 0
		for _, s := range experiments.All() {
			if err := runOne(s, opts); err != nil {
				fmt.Fprintf(os.Stderr, "vivisect: %s: %v\n", s.ID, err)
				failed++
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
		return
	default:
		failed := 0
		for _, id := range args {
			s, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vivisect: %v\n", err)
				failed++
				continue
			}
			if err := runOne(s, opts); err != nil {
				fmt.Fprintf(os.Stderr, "vivisect: %s: %v\n", s.ID, err)
				failed++
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
}

func runOne(s experiments.Spec, opts experiments.Options) error {
	start := time.Now()
	t, err := s.Run(opts)
	if err != nil {
		return err
	}
	fmt.Print(t.Render())
	fmt.Printf("(%s in %v)\n\n", s.Paper, time.Since(start).Round(time.Millisecond))
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `vivisect regenerates the paper's tables and figures.

usage: vivisect [flags] list | all | <experiment-id> [...]

flags:
`)
	flag.PrintDefaults()
}
