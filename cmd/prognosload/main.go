// Command prognosload drives a UE fleet against a Prognos server and
// reports serving latency and throughput (internal/fleet).
//
// Each of the -ues synthetic UEs replays an independent simulated drive
// (per-UE seed) through the real client protocol. In -mode open every UE
// paces its samples at the paper's fixed 20 Hz and the histogram measures
// how late predictions come back relative to the schedule (queueing); in
// -mode closed every UE streams as fast as the round trip allows and the
// run measures capacity.
//
// Usage:
//
//	prognosload [-addr 127.0.0.1:7015 | -selfserve] [-ues 64]
//	            [-duration 10s] [-mode open|closed] [-carrier OpX]
//	            [-arch NSA] [-route freeway] [-seed 1] [-ramp 1s]
//	            [-framing jsonl|binary|mixed] [-window 1]
//	            [-dial-timeout 5s] [-reconnect 8] [-report fleet.json]
//	            [-ops-addr 127.0.0.1:0]
//	            [-chaos] [-chaos-seed 1] [-chaos-reset 0.05] ...
//	            [-addrs h:7015,h:7016,h:7017 | -cluster 3]
//	            [-rolling-restart | -node-kill] [-min-warm-resume 0.9]
//	            [-adaptive]
//
// -adaptive generates every UE's drive under the closed-loop adaptive
// handover controller (internal/ran.AdaptiveController fed by an embedded
// Prognos instance): each drive is simulated twice over the identical seed —
// static baseline and adaptive arm — the adaptive traces are what the fleet
// serves, and the report's "adaptive" block carries the ping-pong
// comparison (tools/benchjson records it under ho_adaptive).
//
// Cluster mode: -addrs points the fleet at an external prognosd cluster
// (each UE dials its token's consistent-hash owner, with the remaining
// members as fallbacks, and follows ownership redirects); -cluster N
// starts an in-process N-node cluster instead. -rolling-restart drain-
// restarts every in-process node once under load — the zero-loss warm
// migration acceptance run `make cluster` gates on, together with
// -min-warm-resume. -node-kill instead hard-crashes one in-process node
// mid-load (no drain — connections RST, local state lost) and revives it
// later: survival rides on async warm-state replication and detector-
// confirmed failover (docs/ARCHITECTURE.md §Failure model), and the same
// zero-loss and warm-resume gates apply — the `make crashtest` run.
//
// -framing selects the wire framing the UEs negotiate (docs/PROTOCOL.md):
// jsonl (default), binary, or mixed (even UEs binary, odd JSONL — the
// interop smoke `make protocol-compat` runs). -window sets the closed-loop
// pipelining window: with -window W > 1 each UE keeps W samples in flight
// and batches its write flushes, which is how the serving path's peak
// predictions/s is measured (see EXPERIMENTS.md).
//
// Chaos mode (-chaos) routes the fleet through a deterministic fault-
// injecting proxy (internal/chaos): every connection draws a seeded fault
// plan — latency, stalls, partial writes, RST-style resets, accept
// failures — and the resilient clients must reconnect and resume without
// losing a sample. The run exits non-zero if any sample is lost or (for
// -selfserve runs) the server counted session errors, so `make chaos` can
// gate on it.
//
// The text summary goes to stdout; -report writes the machine-readable
// fleet report (tools/benchjson -fleet merges it into BENCH_<date>.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/ran"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7015", "Prognos server to load")
	selfServe := flag.Bool("selfserve", false, "start an in-process server instead of dialing -addr")
	ues := flag.Int("ues", 64, "fleet size (concurrent synthetic UEs)")
	duration := flag.Duration("duration", 10*time.Second, "per-UE streaming duration")
	mode := flag.String("mode", "open", "load mode: open (20 Hz pacing) or closed (max rate)")
	carrier := flag.String("carrier", "OpX", "carrier profile (OpX/OpY/OpZ)")
	archName := flag.String("arch", "NSA", "architecture (LTE/NSA/SA)")
	routeName := flag.String("route", "freeway", "drive route kind (freeway/city-loop)")
	seed := flag.Int64("seed", 1, "fleet seed; UE i drives seed+i*7919+1")
	framing := flag.String("framing", "jsonl", "wire framing: jsonl, binary, or mixed (even UEs binary)")
	window := flag.Int("window", 1, "closed-loop pipelining window (samples in flight per UE)")
	ramp := flag.Duration("ramp", time.Second, "window over which session starts are staggered")
	reportPath := flag.String("report", "", "write the machine-readable fleet report JSON here")
	opsAddr := flag.String("ops-addr", "", "ops plane to scrape into the report at end of run (self-serve runs start one here; 127.0.0.1:0 picks a port)")
	dialTimeout := flag.Duration("dial-timeout", 0, "per-connect dial timeout (0 = client default, 5s)")
	reconnect := flag.Int("reconnect", 0, "reconnect attempts per fault (0 = default 8, negative = no retry)")
	chaosOn := flag.Bool("chaos", false, "route the fleet through a deterministic fault-injecting proxy")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos fault plans (replayable)")
	chaosReset := flag.Float64("chaos-reset", 0.05, "per-connection probability of an RST-style reset")
	chaosPartial := flag.Float64("chaos-partial", 0.25, "per-connection probability of fragmented (1..16 byte) writes")
	chaosStall := flag.Float64("chaos-stall", 0.1, "per-connection probability of a mid-stream stall")
	chaosLatency := flag.Float64("chaos-latency", 0.25, "per-connection probability of added first-byte latency")
	chaosAccept := flag.Float64("chaos-accept", 0.02, "probability an accept is refused outright")
	addrs := flag.String("addrs", "", "comma-separated external cluster member list; UEs route by consistent hash")
	clusterNodes := flag.Int("cluster", 0, "start an in-process cluster of N nodes and load it (N > 1)")
	rollingRestart := flag.Bool("rolling-restart", false, "with -cluster: drain-restart every node once under load")
	nodeKill := flag.Bool("node-kill", false, "with -cluster: hard-crash one node mid-load (no drain) and revive it later")
	minWarmResume := flag.Float64("min-warm-resume", 0, "fail the run if the warm-resume ratio falls below this (0 = off)")
	adaptive := flag.Bool("adaptive", false, "generate each UE's drive under the closed-loop adaptive handover controller (vs-static comparison in the report)")
	flag.Parse()

	m, err := fleet.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	arch, err := cellular.ParseArch(*archName)
	if err != nil {
		fatal(err)
	}
	route, err := geo.ParseRouteKind(*routeName)
	if err != nil {
		fatal(err)
	}

	cfg := fleet.Config{
		Addr:          *addr,
		UEs:           *ues,
		Duration:      *duration,
		Mode:          m,
		Carrier:       *carrier,
		Arch:          arch,
		Route:         route,
		Seed:          *seed,
		Ramp:          *ramp,
		Framing:       *framing,
		ClosedWindow:  *window,
		DialTimeout:   *dialTimeout,
		MaxReconnects: *reconnect,
		OpsAddr:       *opsAddr,
	}
	if *selfServe {
		cfg.Addr = ""
		cfg.Server = server.Options{}
	}
	if *addrs != "" {
		cfg.Addr = ""
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Addrs = append(cfg.Addrs, a)
			}
		}
	}
	if *clusterNodes > 1 {
		cfg.Addr = ""
		cfg.ClusterNodes = *clusterNodes
		cfg.RollingRestart = *rollingRestart
		cfg.NodeKill = *nodeKill
	}
	if *adaptive {
		cfg.Adaptive = ran.DefaultAdaptive()
	}
	if *chaosOn {
		cfg.Chaos = &chaos.Config{
			Seed:           *chaosSeed,
			ResetProb:      *chaosReset,
			PartialProb:    *chaosPartial,
			StallProb:      *chaosStall,
			LatencyProb:    *chaosLatency,
			AcceptFailProb: *chaosAccept,
		}
	}

	fmt.Printf("prognosload: %d UEs × %v, %s loop (%s framing, window %d), %s/%s on %s\n",
		cfg.UEs, cfg.Duration, m, *framing, *window, cfg.Carrier, arch, route)
	rep, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("generated %d drives in %.1fs; load phase %.1fs\n",
		rep.UEs, rep.GenMS/1000, rep.WallMS/1000)
	fmt.Printf("samples %d  predictions %d  reports %d  handovers %d\n",
		rep.Samples, rep.Predictions, rep.Reports, rep.Handovers)
	fmt.Printf("throughput %.0f predictions/s\n", rep.PredictionsPerSec)
	l := rep.Latency
	fmt.Printf("latency µs: p50 %.0f  p90 %.0f  p99 %.0f  p999 %.0f  max %.0f (n=%d)\n",
		l.P50US, l.P90US, l.P99US, l.P999US, l.MaxUS, l.Count)
	if rep.Server != nil {
		fmt.Printf("server: sessions %d  rejected %d  session errors %d  oversized %d\n",
			rep.Server.Sessions, rep.Server.Rejected, rep.Server.SessionErrors, rep.Server.Oversized)
	}
	if rep.OpsMetrics != nil {
		fmt.Printf("ops plane: %d series scraped  samples_total %.0f  sessions_total %.0f  latency p99 via histogram buckets\n",
			len(rep.OpsMetrics), rep.OpsMetrics["prognos_samples_total"], rep.OpsMetrics["prognos_sessions_total"])
	}
	if *chaosOn {
		fmt.Printf("chaos: seed %d  faults %d  reconnects %d  resumed %d  cold %d  lost samples %d\n",
			rep.ChaosSeed, rep.ChaosFaults, rep.Reconnects, rep.ResumedSessions, rep.ColdResumes, rep.LostSamples)
	}
	if rep.ClusterSize > 0 {
		fmt.Printf("cluster: %d nodes  restarts %d  migrated %d sessions (%d bytes)  redirects %d  warm-resume %.2f  lost samples %d\n",
			rep.ClusterSize, rep.RollingRestarts, rep.MigratedSessions, rep.MigrationBytes,
			rep.Redirects, rep.WarmResumeRatio, rep.LostSamples)
		for _, n := range rep.PerNode {
			fmt.Printf("  node %s: sessions %d  samples %d  restarts %d  migrated out/in %d/%d  resumed %d\n",
				n.Addr, n.Sessions, n.Samples, n.Restarts, n.MigratedOut, n.MigratedIn, n.Resumed)
		}
		if rep.NodeKills > 0 || rep.Failovers > 0 {
			fmt.Printf("crash: kills %d  failovers %d  replication pushes %d (%d bytes)  reconnects %d  resumed %d  cold %d\n",
				rep.NodeKills, rep.Failovers, rep.ReplicationPushes, rep.ReplicationBytes,
				rep.Reconnects, rep.ResumedSessions, rep.ColdResumes)
		}
	}
	if a := rep.Adaptive; a != nil {
		fmt.Printf("adaptive: ping-pong rate %.4f -> %.4f (%+.1f%%)  HOs %d -> %d  early-preps %d (%.0f ms saved)  skip-aheads %d  reconfigs %d\n",
			a.StaticPingPongRate, a.AdaptivePingPongRate, -100*a.PingPongReduction,
			a.StaticHandovers, a.AdaptiveHandovers, a.EarlyPreps, a.PrepSavedMS, a.SkipAheads, a.Reconfigs)
	}
	if rep.FailedUEs > 0 {
		fmt.Printf("FAILED UEs: %d\n", rep.FailedUEs)
		for _, e := range rep.Errors {
			fmt.Printf("  %s\n", e)
		}
	}

	if *reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
	// Gate hard on fleet health: any failed UE, any lost sample, or (when we
	// own the server) any session error fails the run — `make chaos` and CI
	// depend on this exit code.
	failed := rep.FailedUEs > 0 || rep.LostSamples > 0
	if rep.Server != nil && rep.Server.SessionErrors > 0 {
		failed = true
		fmt.Printf("FAILED: server counted %d session errors\n", rep.Server.SessionErrors)
	}
	if rep.LostSamples > 0 {
		fmt.Printf("FAILED: %d samples lost\n", rep.LostSamples)
	}
	if *minWarmResume > 0 && rep.WarmResumeRatio < *minWarmResume {
		failed = true
		fmt.Printf("FAILED: warm-resume ratio %.2f below -min-warm-resume %.2f (resumed %d, cold %d)\n",
			rep.WarmResumeRatio, *minWarmResume, rep.ResumedSessions, rep.ColdResumes)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "prognosload: %v\n", err)
	os.Exit(1)
}
