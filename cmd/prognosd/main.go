// Command prognosd serves Prognos handover predictions over TCP.
//
// A UE-side agent connects, sends one hello line identifying its carrier
// and architecture, then streams its cross-layer observations as JSONL
// records ({"sample":...}, {"report":...}, {"ho":...}); the daemon answers
// every sample with a prediction line carrying the expected handover type
// and its ho_score.
//
// Run metrics: a client that sends {"stats":true} as its hello receives a
// one-line JSON snapshot (sessions, streamed observations, predictions,
// uptime) and the connection closes — the hook dashboards poll. The same
// snapshot is printed at -stats-interval (when set) and at shutdown.
//
// Usage:
//
//	prognosd [-addr 127.0.0.1:7015] [-stats-interval 30s]
//
// Try it against a simulated drive with examples/livepredict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7015", "listen address")
	statsEvery := flag.Duration("stats-interval", 0, "print a stats snapshot at this interval (0 = off)")
	flag.Parse()

	srv, err := server.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("prognosd listening on %s\n", srv.Addr())

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					printStats(srv)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stop)
	fmt.Println("prognosd: shutting down")
	printStats(srv)
	srv.Close()
}

// printStats writes one JSON snapshot line to stdout.
func printStats(srv *server.Server) {
	b, err := json.Marshal(srv.Stats())
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: stats: %v\n", err)
		return
	}
	fmt.Printf("stats %s\n", b)
}
