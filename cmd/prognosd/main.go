// Command prognosd serves Prognos handover predictions over TCP.
//
// A UE-side agent connects, sends one hello line identifying its carrier
// and architecture, then streams its cross-layer observations as JSONL
// records ({"sample":...}, {"report":...}, {"ho":...}); the daemon answers
// every sample with a prediction line carrying the expected handover type
// and its ho_score.
//
// Hardening: -max-sessions bounds concurrent prediction sessions (extra
// sessions receive a structured {"error":...} line and are closed),
// -session-timeout expires idle or stuck sessions, and on SIGINT/SIGTERM
// the daemon drains gracefully — it stops accepting immediately and gives
// in-flight sessions up to -drain-timeout to finish before cutting them.
//
// Resilience: -resume-grace lets a client that lost its connection resume
// its session warm — the daemon parks the Prognos instance of an
// interrupted tokened session and replays the responses the client missed
// (see docs/ARCHITECTURE.md §Resilience). -checkpoint persists the learned
// pattern state to versioned snapshot files (periodically per
// -checkpoint-interval, and on drain) so a restarted daemon predicts warm
// from its first session.
//
// Run metrics: a client that sends {"stats":true} as its hello receives a
// one-line JSON snapshot (sessions, streamed observations, predictions,
// error counters, uptime) and the connection closes — the hook dashboards
// poll. The same snapshot is printed at -stats-interval (when set) and at
// shutdown.
//
// Usage:
//
//	prognosd [-addr 127.0.0.1:7015] [-stats-interval 30s]
//	         [-max-sessions 0] [-session-timeout 0] [-drain-timeout 10s]
//	         [-resume-grace 30s] [-checkpoint dir] [-checkpoint-interval 10s]
//
// Try it against a simulated drive with examples/livepredict, or load it
// with a synthetic UE fleet via cmd/prognosload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7015", "listen address")
	statsEvery := flag.Duration("stats-interval", 0, "print a stats snapshot at this interval (0 = off)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent prediction sessions (0 = unlimited)")
	sessionTimeout := flag.Duration("session-timeout", 0, "per-session read/write deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget for in-flight sessions at shutdown")
	resumeGrace := flag.Duration("resume-grace", 30*time.Second, "window in which an interrupted tokened session may resume warm (0 = resume off)")
	checkpointDir := flag.String("checkpoint", "", "directory for learner state checkpoints (empty = off)")
	checkpointEvery := flag.Duration("checkpoint-interval", 10*time.Second, "periodic checkpoint interval when -checkpoint is set")
	flag.Parse()

	srv, err := server.ListenWith(*addr, server.Options{
		MaxSessions:        *maxSessions,
		SessionTimeout:     *sessionTimeout,
		ResumeGrace:        *resumeGrace,
		CheckpointDir:      *checkpointDir,
		CheckpointInterval: *checkpointEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("prognosd listening on %s\n", srv.Addr())

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					printStats(srv)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	close(stop)
	fmt.Printf("prognosd: %v received, draining (up to %v)\n", s, *drainTimeout)
	if err := srv.Drain(*drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
	}
	printStats(srv)
}

// printStats writes one JSON snapshot line to stdout.
func printStats(srv *server.Server) {
	b, err := json.Marshal(srv.Stats())
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: stats: %v\n", err)
		return
	}
	fmt.Printf("stats %s\n", b)
}
