// Command prognosd serves Prognos handover predictions over TCP.
//
// A UE-side agent connects, sends one hello line identifying its carrier
// and architecture, then streams its cross-layer observations as JSONL
// records ({"sample":...}, {"report":...}, {"ho":...}); the daemon answers
// every sample with a prediction line carrying the expected handover type
// and its ho_score. A hello carrying "framing":"binary" switches the rest
// of the session to the length-prefixed binary framing high-rate fleets
// use; docs/PROTOCOL.md is the normative wire specification for both
// framings, and the daemon serves JSONL and binary sessions side by side.
//
// Hardening: -max-sessions bounds concurrent prediction sessions (extra
// sessions receive a structured {"error":...} line and are closed),
// -session-timeout expires idle or stuck sessions, and on SIGINT/SIGTERM
// the daemon drains gracefully — it stops accepting immediately and gives
// in-flight sessions up to -drain-timeout to finish before cutting them.
//
// Resilience: -resume-grace lets a client that lost its connection resume
// its session warm — the daemon parks the Prognos instance of an
// interrupted tokened session and replays the responses the client missed
// (see docs/ARCHITECTURE.md §Resilience). -checkpoint persists the learned
// pattern state to versioned snapshot files (periodically per
// -checkpoint-interval, and on drain) so a restarted daemon predicts warm
// from its first session.
//
// Run metrics: a client that sends {"stats":true} as its hello receives a
// one-line JSON snapshot (sessions, streamed observations, predictions,
// error counters, uptime) and the connection closes — the hook dashboards
// poll. The same snapshot is printed at -stats-interval (when set) and at
// shutdown.
//
// Observability: -ops-addr starts the out-of-band HTTP ops plane
// (internal/obs) — Prometheus text-format /metrics over every internal
// counter plus the per-request latency histogram, /healthz and a
// drain-aware /readyz, the serving-pipeline event trace at /events
// (JSONL), and net/http/pprof under /debug/pprof/. -trace-file
// additionally mirrors every trace event to a JSONL file as it is
// emitted. The ops plane outlives the session listener during shutdown:
// it stays scrapeable through the drain and stops only after the last
// session finishes.
//
// Clustering: -cluster takes the full member list (comma-separated) and
// -advertise this node's address within it (default -addr). A clustered
// node owns the session tokens the consistent-hash ring assigns it and
// answers sessions for other owners with a structured redirect; at
// shutdown it drains warm — parked sessions and learned context state
// ship to the ring successors over migration streams so resumed sessions
// start warm on their new node (docs/ARCHITECTURE.md §Cluster,
// docs/PROTOCOL.md §Migration frames). -replication-interval additionally
// streams warm state to the ring successors ahead of any failure, so a
// peer that crashes without draining loses at most the samples since its
// last push: the surviving nodes' heartbeat detector confirms it down and
// they serve its sessions from replicated state
// (docs/ARCHITECTURE.md §Failure model).
//
// Usage:
//
//	prognosd [-addr 127.0.0.1:7015] [-stats-interval 30s]
//	         [-max-sessions 0] [-session-timeout 0] [-drain-timeout 10s]
//	         [-resume-grace 30s] [-checkpoint dir] [-checkpoint-interval 10s]
//	         [-ops-addr 127.0.0.1:9090] [-trace-file events.jsonl]
//	         [-cluster host:7015,host:7016,host:7017] [-advertise host:7015]
//	         [-replication-interval 100ms] [-heartbeat-interval 50ms]
//
// Try it against a simulated drive with examples/livepredict, or load it
// with a synthetic UE fleet via cmd/prognosload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7015", "listen address")
	statsEvery := flag.Duration("stats-interval", 0, "print a stats snapshot at this interval (0 = off)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent prediction sessions (0 = unlimited)")
	sessionTimeout := flag.Duration("session-timeout", 0, "per-session read/write deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget for in-flight sessions at shutdown")
	resumeGrace := flag.Duration("resume-grace", 30*time.Second, "window in which an interrupted tokened session may resume warm (0 = resume off)")
	checkpointDir := flag.String("checkpoint", "", "directory for learner state checkpoints (empty = off)")
	checkpointEvery := flag.Duration("checkpoint-interval", 10*time.Second, "periodic checkpoint interval when -checkpoint is set")
	opsAddr := flag.String("ops-addr", "", "HTTP ops plane address (/metrics, /healthz, /readyz, /events, /debug/pprof); empty = off")
	traceFile := flag.String("trace-file", "", "mirror serving-pipeline trace events to this JSONL file")
	clusterList := flag.String("cluster", "", "comma-separated cluster member list (must include this node's advertised address); empty = single node")
	advertise := flag.String("advertise", "", "this node's address within -cluster (defaults to -addr)")
	replicationEvery := flag.Duration("replication-interval", 0, "with -cluster: push warm state to ring successors at this interval for crash failover (0 = off)")
	heartbeatEvery := flag.Duration("heartbeat-interval", 0, "with -cluster: peer failure-detector probe interval (0 = default when replicating)")
	flag.Parse()

	// Cluster wiring: the member list plus this node's advertised identity
	// turn on consistent-hash ownership (sessions for tokens another node
	// owns are redirected there) and warm drain-to-cluster at shutdown.
	var ring *cluster.Ring
	nodeAddr := *advertise
	if nodeAddr == "" {
		nodeAddr = *addr
	}
	if *clusterList != "" {
		members := strings.Split(*clusterList, ",")
		for i := range members {
			members[i] = strings.TrimSpace(members[i])
		}
		var err error
		ring, err = cluster.New(members, cluster.NewRingPolicy())
		if err != nil {
			fmt.Fprintf(os.Stderr, "prognosd: -cluster: %v\n", err)
			os.Exit(1)
		}
		if !ring.Contains(nodeAddr) {
			fmt.Fprintf(os.Stderr, "prognosd: advertised address %s is not in the cluster member list %v\n", nodeAddr, ring.Members())
			os.Exit(1)
		}
	}

	// The tracer exists whenever anything consumes it; a nil tracer makes
	// every instrumentation site in the server a no-op.
	var tracer *obs.Tracer
	var traceSink *os.File
	if *opsAddr != "" || *traceFile != "" {
		tracer = obs.NewTracer(0)
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prognosd: trace-file: %v\n", err)
				os.Exit(1)
			}
			traceSink = f
			tracer.MirrorTo(f)
		}
	}

	srv, err := server.ListenWith(*addr, server.Options{
		MaxSessions:         *maxSessions,
		SessionTimeout:      *sessionTimeout,
		ResumeGrace:         *resumeGrace,
		CheckpointDir:       *checkpointDir,
		CheckpointInterval:  *checkpointEvery,
		Tracer:              tracer,
		Cluster:             ring,
		NodeAddr:            nodeAddr,
		ReplicationInterval: *replicationEvery,
		HeartbeatInterval:   *heartbeatEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
		os.Exit(1)
	}
	if ring != nil {
		fmt.Printf("prognosd listening on %s (cluster node %s of %d)\n", srv.Addr(), nodeAddr, ring.Size())
	} else {
		fmt.Printf("prognosd listening on %s\n", srv.Addr())
	}

	// ListenWith has already restored checkpoints synchronously, so by the
	// time the ops plane is reachable the daemon is genuinely ready; the
	// probe then only needs to watch for the drain.
	var plane *obs.Plane
	if *opsAddr != "" {
		reg := obs.NewRegistry()
		if ring != nil {
			// One scraper watching N nodes tells them apart by the node
			// identity label rather than by scrape target alone.
			reg.SetConstLabels(map[string]string{"node": nodeAddr})
		}
		obs.RegisterBuildInfo(reg)
		obs.RegisterServerMetrics(reg, srv.Stats)
		plane, err = obs.Listen(*opsAddr, obs.Config{
			Registry: reg,
			Tracer:   tracer,
			Ready:    func() bool { return !srv.Draining() },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("prognosd ops plane on %s\n", plane.Addr())
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					printStats(srv)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	close(stop)
	fmt.Printf("prognosd: %v received, draining (up to %v)\n", s, *drainTimeout)
	// Shutdown order matters: Drain flips /readyz to 503 the moment it
	// starts (stop-accept), the ops plane keeps answering scrapes while
	// in-flight sessions finish, and only after the drain completes does
	// the plane itself go away. A cluster node drains its warm state to
	// its peers instead of waiting sessions out, so the fleet's resilient
	// clients resume warm on the ring successors (zero lost samples).
	if ring != nil {
		ds, err := srv.DrainToCluster(*drainTimeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prognosd: drain-to-cluster: %v\n", err)
		}
		fmt.Printf("prognosd: %s\n", ds.Summary())
	} else if err := srv.Drain(*drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
	}
	if plane != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		plane.Shutdown(ctx)
		cancel()
	}
	if traceSink != nil {
		traceSink.Close()
	}
	printStats(srv)
}

// printStats writes one JSON snapshot line to stdout.
func printStats(srv *server.Server) {
	b, err := json.Marshal(srv.Stats())
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: stats: %v\n", err)
		return
	}
	fmt.Printf("stats %s\n", b)
}
