// Command prognosd serves Prognos handover predictions over TCP.
//
// A UE-side agent connects, sends one hello line identifying its carrier
// and architecture, then streams its cross-layer observations as JSONL
// records ({"sample":...}, {"report":...}, {"ho":...}); the daemon answers
// every sample with a prediction line carrying the expected handover type
// and its ho_score.
//
// Usage:
//
//	prognosd [-addr 127.0.0.1:7015]
//
// Try it against a simulated drive with examples/livepredict.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7015", "listen address")
	flag.Parse()

	srv, err := server.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prognosd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("prognosd listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("prognosd: shutting down")
	srv.Close()
}
