// Package repro is the public API of the 5G mobility-management
// reproduction (Hassan et al., "Vivisecting Mobility Management in 5G
// Cellular Networks", SIGCOMM 2022): a cross-layer drive-test simulator
// that regenerates the paper's measurement findings, and Prognos, the
// paper's online handover-prediction system.
//
// Quick start:
//
//	log, err := repro.Drive(repro.DriveConfig{
//		Carrier:   repro.OpX(),
//		Arch:      repro.ArchNSA,
//		RouteKind: repro.RouteCityLoop,
//		Seed:      42,
//	})
//	prog, err := repro.NewPrognos(repro.PrognosConfig{
//		EventConfigs:       repro.EventConfigs("OpX", repro.ArchNSA),
//		Arch:               repro.ArchNSA,
//		UseReportPredictor: true,
//	})
//	ticks := repro.Replay(prog, log)
//
// The experiment harness behind the cmd/vivisect binary is exposed through
// Experiments and RunExperiment. Everything is deterministic for a given
// seed and depends only on the standard library.
package repro

import (
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Duration aliases time.Duration for the API surface.
type Duration = time.Duration

// Domain model re-exports.
type (
	// Arch is a deployment architecture (LTE, NSA, SA).
	Arch = cellular.Arch
	// Band is a radio frequency band class.
	Band = cellular.Band
	// HOType is a handover procedure type (Table 2 taxonomy).
	HOType = cellular.HOType
	// EventConfig is a 3GPP measurement-event configuration (Table 4).
	EventConfig = cellular.EventConfig
	// MeasurementReport is a UE→network measurement report.
	MeasurementReport = cellular.MeasurementReport
	// HandoverEvent is one executed handover with its T1/T2 decomposition.
	HandoverEvent = cellular.HandoverEvent
)

// Architecture, band and handover-type constants.
const (
	ArchLTE = cellular.ArchLTE
	ArchNSA = cellular.ArchNSA
	ArchSA  = cellular.ArchSA

	BandLow    = cellular.BandLow
	BandMid    = cellular.BandMid
	BandMMWave = cellular.BandMMWave

	HONone = cellular.HONone
	HOSCGA = cellular.HOSCGA
	HOSCGR = cellular.HOSCGR
	HOSCGM = cellular.HOSCGM
	HOSCGC = cellular.HOSCGC
	HOMNBH = cellular.HOMNBH
	HOMCGH = cellular.HOMCGH
	HOLTEH = cellular.HOLTEH
)

// Simulation re-exports.
type (
	// DriveConfig configures one simulated drive test.
	DriveConfig = sim.Config
	// CarrierProfile describes an operator's deployment strategy.
	CarrierProfile = topology.CarrierProfile
	// TopologyOptions tunes deployment generation.
	TopologyOptions = topology.Options
	// Log is a cross-layer drive capture.
	Log = trace.Log
	// Sample is one 20 Hz cross-layer log record.
	Sample = trace.Sample
	// RouteKind selects the synthetic route generator.
	RouteKind = geo.RouteKind
	// BearerMode selects the NSA traffic split (dual vs 5G-only).
	BearerMode = throughput.BearerMode
)

// Route and bearer-mode constants.
const (
	RouteFreeway  = geo.RouteFreeway
	RouteCityLoop = geo.RouteCityLoop

	ModeSCG   = throughput.ModeSCG
	ModeSplit = throughput.ModeSplit
)

// OpX returns the OpX carrier profile (NSA; low-band + mmWave 5G).
func OpX() CarrierProfile { return topology.OpX() }

// OpY returns the OpY carrier profile (NSA + SA; low-band + mid-band 5G).
func OpY() CarrierProfile { return topology.OpY() }

// OpZ returns the OpZ carrier profile (NSA; low-band + mmWave 5G).
func OpZ() CarrierProfile { return topology.OpZ() }

// Carriers returns all three operator profiles.
func Carriers() []CarrierProfile { return topology.Carriers() }

// Drive runs one simulated drive test and returns its cross-layer log.
func Drive(cfg DriveConfig) (*Log, error) { return sim.Run(cfg) }

// EventConfigs returns the measurement configurations the given carrier
// pushes to UEs under an architecture — the RRC-sniffed input Prognos
// needs.
func EventConfigs(carrier string, arch Arch) []EventConfig {
	return ran.EventConfigsFor(carrier, arch)
}

// Prognos re-exports.
type (
	// Prognos is the handover-prediction system (§7).
	Prognos = core.Prognos
	// PrognosConfig tunes a Prognos instance.
	PrognosConfig = core.Config
	// Prediction is Prognos' per-window output.
	Prediction = core.Prediction
	// Pattern is one learned handover-decision pattern.
	Pattern = core.Pattern
	// Predictor is the interface shared by Prognos and the baselines.
	Predictor = core.Predictor
	// TickPrediction is one per-sample prediction during a replay.
	TickPrediction = core.TickPrediction
	// EventOutcome holds event-level evaluation results.
	EventOutcome = core.EventOutcome
	// ScoreTable maps handover types to ho_score values.
	ScoreTable = core.ScoreTable
)

// NewPrognos creates a Prognos instance.
func NewPrognos(cfg PrognosConfig) (*Prognos, error) { return core.New(cfg) }

// Replay feeds a drive log through a predictor in time order, recording
// the prediction at every sample (trace-driven emulation, §7.3).
func Replay(p Predictor, log *Log) []TickPrediction { return core.Replay(p, log) }

// Evaluate performs the event-level F1/precision/recall evaluation with
// the given prediction window.
func Evaluate(ticks []TickPrediction, handovers []HandoverEvent, window Duration) EventOutcome {
	return core.EvaluateEvents(ticks, handovers, window)
}

// DefaultScores returns the Fig. 16-derived ho_score table.
func DefaultScores() ScoreTable { return core.DefaultScores() }

// Link emulation re-exports (for application studies).
type (
	// BandwidthTrace is a recorded downlink capacity series.
	BandwidthTrace = emu.BandwidthTrace
	// Link is the Mahimahi-style trace-driven downlink.
	Link = emu.Link
)

// NewBandwidthTrace wraps a capacity series for replay.
func NewBandwidthTrace(mbps []float64, interval Duration) (*BandwidthTrace, error) {
	return emu.NewBandwidthTrace(mbps, interval)
}

// NewLink creates an emulated link over a bandwidth trace.
func NewLink(tr *BandwidthTrace, rtt Duration) *Link { return emu.NewLink(tr, rtt) }

// Experiment harness re-exports.
type (
	// Experiment names one runnable paper table/figure regeneration.
	Experiment = experiments.Spec
	// ExperimentOptions tunes experiment scale and seeding.
	ExperimentOptions = experiments.Options
	// ResultTable is a rendered experiment result.
	ResultTable = experiments.Table
)

// Experiments returns every table/figure regeneration in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment runs one experiment by id (e.g. "fig8", "table3").
func RunExperiment(id string, opts ExperimentOptions) (ResultTable, error) {
	spec, err := experiments.ByID(id)
	if err != nil {
		return ResultTable{}, err
	}
	return spec.Run(opts)
}
