package repro_test

import (
	"testing"
	"time"

	"repro"
)

// TestPublicAPIQuickstart runs the README's documented flow end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	log, err := repro.Drive(repro.DriveConfig{
		Carrier:      repro.OpX(),
		Arch:         repro.ArchNSA,
		RouteKind:    repro.RouteCityLoop,
		RouteLengthM: 2500,
		Laps:         2,
		SpeedMPS:     8.3,
		Seed:         42,
		TopoOpts:     repro.TopologyOptions{CityDensity: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Handovers) == 0 {
		t.Fatal("drive produced no handovers")
	}

	prog, err := repro.NewPrognos(repro.PrognosConfig{
		EventConfigs:       repro.EventConfigs("OpX", repro.ArchNSA),
		Arch:               repro.ArchNSA,
		UseReportPredictor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ticks := repro.Replay(prog, log)
	if len(ticks) != len(log.Samples) {
		t.Fatalf("replay produced %d ticks for %d samples", len(ticks), len(log.Samples))
	}
	ev := repro.Evaluate(ticks, log.Handovers, time.Second)
	if ev.TP+ev.FN == 0 {
		t.Fatal("evaluation saw no handover events")
	}
}

func TestPublicAPICarriers(t *testing.T) {
	if len(repro.Carriers()) != 3 {
		t.Fatal("three carriers")
	}
	if !repro.OpY().Has(repro.ArchSA) {
		t.Error("OpY deploys SA")
	}
	if repro.OpX().Has(repro.ArchSA) {
		t.Error("OpX does not deploy SA")
	}
	if len(repro.EventConfigs("OpZ", repro.ArchNSA)) == 0 {
		t.Error("no event configs")
	}
}

func TestPublicAPIScores(t *testing.T) {
	s := repro.DefaultScores()
	if s.Score(repro.HONone) != 1 {
		t.Error("no-HO score")
	}
	if s.Score(repro.HOSCGR) >= 1 || s.Score(repro.HOSCGA) <= 1 {
		t.Error("vertical HO score directions")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	specs := repro.Experiments()
	if len(specs) != 20 {
		t.Fatalf("%d experiments exposed, want 20", len(specs))
	}
	// Run the cheapest experiment through the facade.
	tab, err := repro.RunExperiment("fig13", repro.ExperimentOptions{Seed: 3, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	if _, err := repro.RunExperiment("nope", repro.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicAPIEmulator(t *testing.T) {
	tr, err := repro.NewBandwidthTrace([]float64{50, 60, 70}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	link := repro.NewLink(tr, 20*time.Millisecond)
	if d := link.Download(1e6); d <= 0 {
		t.Fatal("download made no progress")
	}
}
