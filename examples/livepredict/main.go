// Livepredict: Prognos as a network service. The example starts a
// prediction server in-process (the same engine cmd/prognosd runs), streams
// a simulated drive to it over TCP exactly as a UE-side agent would, and
// tallies how the live predictions line up with the handovers that actually
// followed.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	srv, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("prognos server on %s\n", srv.Addr())

	drive, err := repro.Drive(repro.DriveConfig{
		Carrier:      repro.OpX(),
		Arch:         repro.ArchNSA,
		RouteKind:    repro.RouteCityLoop,
		RouteLengthM: 3000,
		Laps:         3,
		SpeedMPS:     8.3,
		Seed:         5,
		TopoOpts:     repro.TopologyOptions{CityDensity: 0.7},
	})
	if err != nil {
		log.Fatal(err)
	}

	client, err := server.Dial(srv.Addr(), server.Hello{Carrier: "OpX", Arch: repro.ArchNSA})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Stream the drive in time order, as a UE agent would: control-plane
	// events as they are sniffed, a prediction request per radio sample.
	ticks := make([]repro.TickPrediction, 0, len(drive.Samples))
	ri, hi := 0, 0
	for _, smp := range drive.Samples {
		for ri < len(drive.Reports) && drive.Reports[ri].Time <= smp.Time {
			if err := client.SendReport(drive.Reports[ri]); err != nil {
				log.Fatal(err)
			}
			ri++
		}
		for hi < len(drive.Handovers) && drive.Handovers[hi].Time <= smp.Time {
			if err := client.SendHandover(drive.Handovers[hi]); err != nil {
				log.Fatal(err)
			}
			hi++
		}
		resp, err := client.SendSample(smp)
		if err != nil {
			log.Fatal(err)
		}
		ticks = append(ticks, repro.TickPrediction{Time: resp.Time, Type: resp.Type})
	}

	ev := repro.Evaluate(ticks, drive.Handovers, time.Second)
	fmt.Printf("streamed %d samples, %d reports, %d handovers over TCP\n",
		len(drive.Samples), len(drive.Reports), len(drive.Handovers))
	fmt.Printf("live prediction quality: F1=%.3f precision=%.3f recall=%.3f\n",
		ev.F1(), ev.Precision(), ev.Recall())
}
