// Streaming: the §7.4 use case. A 16K panoramic VoD session over a
// bandwidth trace recorded from a simulated NSA drive, comparing fastMPC
// with and without Prognos' ho_score throughput correction.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/abr"
)

func main() {
	// A freeway drive crosses 5G coverage fringes, so the trace carries the
	// big capacity steps (SCG releases and re-additions) that HO-aware rate
	// adaptation is designed to anticipate.
	drive, err := repro.Drive(repro.DriveConfig{
		Carrier:      repro.OpX(),
		Arch:         repro.ArchNSA,
		RouteKind:    repro.RouteFreeway,
		RouteLengthM: 25000,
		SpeedMPS:     29,
		Seed:         91,
		TopoOpts:     repro.TopologyOptions{SkipMMWave: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Record the drive's downlink capacity at 100 ms granularity (the
	// Mahimahi-style record step).
	const step = 100 * time.Millisecond
	var mbps []float64
	var acc float64
	n := 0
	next := step
	for _, s := range drive.Samples {
		for s.Time >= next {
			if n > 0 {
				mbps = append(mbps, acc/float64(n))
			}
			acc, n = 0, 0
			next += step
		}
		acc += s.TputMbps
		n++
	}
	bw, err := repro.NewBandwidthTrace(mbps, step)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bandwidth trace: %v, mean %.0f Mbps, min %.0f Mbps\n",
		bw.Duration().Round(time.Second), bw.Mean(), bw.Min())

	// Prognos rides along the same drive to produce live ho_scores.
	prog, err := repro.NewPrognos(repro.PrognosConfig{
		EventConfigs:       repro.EventConfigs("OpX", repro.ArchNSA),
		Arch:               repro.ArchNSA,
		UseReportPredictor: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ticks := repro.Replay(prog, drive)
	video := abr.Panoramic16K()
	scores := repro.DefaultScores()
	scoreAt := func(now time.Duration) abr.ChunkContext {
		// A chunk spans 2 s: apply the first positive prediction standing
		// anywhere inside the chunk's playback window.
		for _, tk := range ticks {
			if tk.Time < now {
				continue
			}
			if tk.Time >= now+video.ChunkDur {
				break
			}
			if tk.Type != repro.HONone {
				return abr.ChunkContext{Score: scores.Score(tk.Type)}
			}
		}
		return abr.ChunkContext{Score: 1}
	}

	for _, variant := range []struct {
		name    string
		scoreFn abr.ScoreAtFunc
	}{
		{"fastMPC", nil},
		{"fastMPC-PR (Prognos)", scoreAt},
	} {
		res, err := abr.PlayVoD(video, repro.NewLink(bw, 40*time.Millisecond), abr.MPC{}, variant.scoreFn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s stall %5.2f%%  avg bitrate %6.1f Mbps  switches %d\n",
			variant.name, res.StallPct, res.AvgBitrateMbps, res.Switches)
	}
	fmt.Println("\nthe PR variant scales its throughput predictions by Prognos' ho_score,")
	fmt.Println("downshifting ahead of SCG releases instead of stalling through them.")
}
