// Drivetour: the paper's §5 characterisation in miniature. A freeway drive
// under each deployment architecture, comparing handover frequency, stage
// durations (T1/T2), signalling, and UE battery drain — the headline
// differences between LTE, NSA 5G, and SA 5G.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/energy"
	"repro/internal/stats"
)

func main() {
	type row struct {
		label   string
		carrier repro.CarrierProfile
		arch    repro.Arch
	}
	rows := []row{
		{"4G/LTE", repro.OpX(), repro.ArchLTE},
		{"NSA 5G", repro.OpX(), repro.ArchNSA},
		{"SA 5G", repro.OpY(), repro.ArchSA},
	}
	fmt.Printf("%-8s %6s %12s %10s %10s %12s %12s\n",
		"arch", "HOs", "spacing(km)", "T1(ms)", "T2(ms)", "msgs/HO", "mAh/100km")
	for _, r := range rows {
		drive, err := repro.Drive(repro.DriveConfig{
			Carrier:      r.carrier,
			Arch:         r.arch,
			RouteKind:    repro.RouteFreeway,
			RouteLengthM: 50000,
			SpeedMPS:     29,
			Seed:         7,
			TopoOpts:     repro.TopologyOptions{SkipMMWave: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		var t1s, t2s []float64
		msgs := 0
		for _, h := range drive.Handovers {
			t1s = append(t1s, float64(h.T1)/float64(time.Millisecond))
			t2s = append(t2s, float64(h.T2)/float64(time.Millisecond))
			msgs += h.Signaling.Total()
		}
		drain := energy.Summarize(drive.Handovers, drive.DistanceKM())
		fmt.Printf("%-8s %6d %12.2f %10.1f %10.1f %12.1f %12.2f\n",
			r.label, len(drive.Handovers),
			drive.DistanceKM()/float64(len(drive.Handovers)),
			stats.Mean(t1s), stats.Mean(t2s),
			float64(msgs)/float64(len(drive.Handovers)),
			drain.PerKmMAh*100)
	}
	fmt.Println("\nthe §5 findings in one table: NSA handovers are the most frequent and")
	fmt.Println("the longest, with the heaviest signalling and battery cost; SA trims all")
	fmt.Println("three; LTE sits in between on frequency but is fastest per handover.")
}
