// Quickstart: simulate a short NSA 5G city drive, print the handover
// activity, run Prognos over the same drive online, and report its
// prediction quality — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	drive, err := repro.Drive(repro.DriveConfig{
		Carrier:      repro.OpX(),
		Arch:         repro.ArchNSA,
		RouteKind:    repro.RouteCityLoop,
		RouteLengthM: 4000,
		Laps:         4,
		SpeedMPS:     8.3, // ≈30 km/h downtown
		Seed:         42,
		TopoOpts:     repro.TopologyOptions{CityDensity: 0.7},
	})
	if err != nil {
		log.Fatal(err)
	}

	counts := map[repro.HOType]int{}
	for _, h := range drive.Handovers {
		counts[h.Type]++
	}
	fmt.Printf("drive: %.1f km in %v, %d handovers (one every %.2f km)\n",
		drive.DistanceKM(), drive.Duration().Round(time.Second),
		len(drive.Handovers), drive.DistanceKM()/float64(len(drive.Handovers)))
	for _, ty := range []repro.HOType{repro.HOSCGA, repro.HOSCGR, repro.HOSCGM, repro.HOSCGC, repro.HOMNBH, repro.HOLTEH} {
		if counts[ty] > 0 {
			fmt.Printf("  %-5s %4d\n", ty, counts[ty])
		}
	}

	prog, err := repro.NewPrognos(repro.PrognosConfig{
		EventConfigs:       repro.EventConfigs("OpX", repro.ArchNSA),
		Arch:               repro.ArchNSA,
		UseReportPredictor: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ticks := repro.Replay(prog, drive)
	ev := repro.Evaluate(ticks, drive.Handovers, time.Second)
	fmt.Printf("\nPrognos (learning online during the drive):\n")
	fmt.Printf("  F1=%.3f precision=%.3f recall=%.3f accuracy=%.3f\n",
		ev.F1(), ev.Precision(), ev.Recall(), ev.Accuracy())

	learned, evicted, phases, live := prog.Learner().Stats()
	fmt.Printf("  %d phases observed, %d patterns learned, %d evicted, %d live\n",
		phases, learned, evicted, live)
	fmt.Println("\nmost supported handover patterns:")
	bestBy := map[repro.HOType]repro.Pattern{}
	for _, p := range prog.Learner().Patterns() {
		if b, ok := bestBy[p.HO]; !ok || p.Support > b.Support {
			bestBy[p.HO] = p
		}
	}
	for _, p := range bestBy {
		fmt.Printf("  %v\n", p)
	}
}
