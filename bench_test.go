// The benchmark harness: one benchmark per paper table/figure (each runs
// the full regeneration pipeline at a reduced scale and reports the
// headline metric via b.ReportMetric), micro-benchmarks for the hot paths,
// and the ablation benches DESIGN.md calls out.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// benchOpts trades statistical depth for per-iteration time.
func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(i + 1), Scale: 0.25}
}

// experimentBench runs one experiment regeneration per iteration.
func experimentBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		spec, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.Run(benchOpts(i)); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkTable1Dataset(b *testing.B)      { experimentBench(b, "table1") }
func BenchmarkFig4Conferencing(b *testing.B)   { experimentBench(b, "fig4") }
func BenchmarkFig5CloudGaming(b *testing.B)    { experimentBench(b, "fig5") }
func BenchmarkFig6Volumetric(b *testing.B)     { experimentBench(b, "fig6") }
func BenchmarkFig7BearerModes(b *testing.B)    { experimentBench(b, "fig7") }
func BenchmarkHOFrequency(b *testing.B)        { experimentBench(b, "freq") }
func BenchmarkFig8Preparation(b *testing.B)    { experimentBench(b, "fig8") }
func BenchmarkFig9Execution(b *testing.B)      { experimentBench(b, "fig9") }
func BenchmarkFig10Energy(b *testing.B)        { experimentBench(b, "fig10") }
func BenchmarkFig11Coverage(b *testing.B)      { experimentBench(b, "fig11") }
func BenchmarkFig12SCGCBandwidth(b *testing.B) { experimentBench(b, "fig12") }
func BenchmarkFig13Colocation(b *testing.B)    { experimentBench(b, "fig13") }
func BenchmarkTable3Prediction(b *testing.B)   { experimentBench(b, "table3") }
func BenchmarkFig14PanoramicVoD(b *testing.B)  { experimentBench(b, "fig14") }
func BenchmarkFig14Volumetric(b *testing.B)    { experimentBench(b, "fig14c") }
func BenchmarkFig15Bootstrap(b *testing.B)     { experimentBench(b, "fig15") }
func BenchmarkFig16HOTypes(b *testing.B)       { experimentBench(b, "fig16") }
func BenchmarkFig18LeadTime(b *testing.B)      { experimentBench(b, "fig18") }

// --- Whole-paper regeneration: sequential vs. worker pool ---

// benchAll regenerates every registered experiment per iteration through
// the runner at the given pool size, at a scale small enough to keep one
// iteration in tens of seconds. Individual experiments may error at this
// tiny scale (too few events observed); that is part of the workload, not
// a bench failure — only a runner malfunction aborts.
func benchAll(b *testing.B, jobs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.Runner{Jobs: jobs, Options: experiments.Options{Seed: int64(i + 1), Scale: 0.1}}
		results, _ := r.Run(context.Background(), experiments.All())
		rows := 0
		for _, res := range results {
			if res.Skipped {
				b.Fatalf("%s skipped: runner must not cancel without FailFast", res.Spec.ID)
			}
			rows += res.Metrics.Rows
		}
		b.ReportMetric(float64(rows), "rows/op")
	}
}

// BenchmarkAllSequential is the historical one-at-a-time behaviour
// (vivisect all -jobs 1).
func BenchmarkAllSequential(b *testing.B) { benchAll(b, 1) }

// BenchmarkAllParallel fans the same batch out across GOMAXPROCS workers;
// the speedup over BenchmarkAllSequential is the parallel engine's win on
// the current hardware.
func BenchmarkAllParallel(b *testing.B) { benchAll(b, 0) }

// --- Micro-benchmarks for the substrate hot paths ---

// benchWalk builds the shared walking log for the prediction benches.
func benchWalk(b *testing.B, seed int64) *trace.Log {
	b.Helper()
	log, err := sim.Run(sim.Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 2500,
		Laps:         3,
		SpeedMPS:     1.4,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
	if err != nil {
		b.Fatal(err)
	}
	return log
}

// BenchmarkSimFreewayKm measures simulator throughput (wall time per
// simulated freeway kilometre, NSA with all layers).
func BenchmarkSimFreewayKm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, err := sim.Run(sim.Config{
			Carrier:      topology.OpX(),
			Arch:         cellular.ArchNSA,
			RouteKind:    geo.RouteFreeway,
			RouteLengthM: 10000,
			SpeedMPS:     29,
			Seed:         int64(i),
			TopoOpts:     topology.Options{SkipMMWave: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(log.Handovers))/log.DistanceKM(), "HO/km")
	}
}

// BenchmarkPrognosReplay measures the full Prognos pipeline per radio
// sample (report predictor + pattern matching at 20 Hz).
func BenchmarkPrognosReplay(b *testing.B) {
	log := benchWalk(b, 51)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor("OpX", cellular.ArchNSA),
			Arch:               cellular.ArchNSA,
			UseReportPredictor: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ticks := core.Replay(prog, log)
		ev := core.EvaluateEvents(ticks, log.Handovers, time.Second)
		b.ReportMetric(ev.F1(), "F1")
	}
	b.ReportMetric(float64(len(log.Samples)), "samples/op")
}

// BenchmarkGBCTraining measures baseline training cost.
func BenchmarkGBCTraining(b *testing.B) {
	log := benchWalk(b, 53)
	params := baseline.GBCParams{Seed: 1}
	examples := baseline.ExtractExamples(log, time.Second, params)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TrainGBC(examples, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMTraining measures the from-scratch BPTT cost per epoch.
func BenchmarkLSTMTraining(b *testing.B) {
	log := benchWalk(b, 55)
	params := baseline.LSTMParams{Seed: 1, Epochs: 1}
	seqs := baseline.ExtractSequences(log, time.Second, params)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TrainLSTM(seqs, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatternMatch measures the decision learner's per-prediction
// matching cost at a realistic store size.
func BenchmarkPatternMatch(b *testing.B) {
	l := core.NewDecisionLearner(core.LearnerConfig{})
	keys := []string{"A2", "A3", "A5", "NR-A2", "NR-A3s", "NR-A3d", "NR-B1", "HO:MNBH"}
	types := cellular.AllHOTypes()
	for i := 0; i < 400; i++ {
		seq := []string{keys[i%len(keys)], keys[(i*3+1)%len(keys)], keys[(i*7+2)%len(keys)]}
		l.ObservePhase(seq, types[i%len(types)])
	}
	probe := []string{"A2", "NR-B1", "A3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Match(probe, nil)
	}
}

// BenchmarkLinkEmulation measures chunk-download emulation.
func BenchmarkLinkEmulation(b *testing.B) {
	mbps := make([]float64, 2400)
	for i := range mbps {
		mbps[i] = 30 + 40*float64(i%17)/16
	}
	tr, err := emu.NewBandwidthTrace(mbps, 100*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link := emu.NewLink(tr, 40*time.Millisecond)
		for c := 0; c < 60; c++ {
			link.Download(10e6)
		}
	}
}

// --- Ablation benches (DESIGN.md) ---

// ablationF1 replays a configured Prognos over a fixed walk and reports F1.
func ablationF1(b *testing.B, mutate func(*core.Config)) {
	log := benchWalk(b, 57)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			EventConfigs:       ran.EventConfigsFor("OpX", cellular.ArchNSA),
			Arch:               cellular.ArchNSA,
			UseReportPredictor: true,
		}
		mutate(&cfg)
		prog, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ticks := core.Replay(prog, log)
		b.ReportMetric(core.EvaluateEvents(ticks, log.Handovers, time.Second).F1(), "F1")
	}
}

// BenchmarkAblationFull is the reference configuration.
func BenchmarkAblationFull(b *testing.B) {
	ablationF1(b, func(*core.Config) {})
}

// BenchmarkAblationNoReportPredictor disables the first pipeline stage
// (the Fig. 18 ablation): predictions from observed reports only.
func BenchmarkAblationNoReportPredictor(b *testing.B) {
	ablationF1(b, func(c *core.Config) { c.UseReportPredictor = false })
}

// BenchmarkAblationNoSmoothing drops the triangular-kernel smoother down
// to a single sample, exposing the forecaster to raw fading.
func BenchmarkAblationNoSmoothing(b *testing.B) {
	ablationF1(b, func(c *core.Config) { c.SmootherWindow = 1 })
}

// BenchmarkAblationNoEviction turns off freshness-based pattern eviction.
func BenchmarkAblationNoEviction(b *testing.B) {
	ablationF1(b, func(c *core.Config) { c.Learner.FreshnessPhases = 1 << 20 })
}

// BenchmarkAblationMonolithic approximates a monolithic learner: suffix
// mining collapsed to full-sequence patterns only (MaxSuffixLen huge means
// every suffix is mined; 1 means only the last report is used — both lose
// to the default, showing why the two-stage decomposition with bounded
// pattern growth wins).
func BenchmarkAblationMonolithic(b *testing.B) {
	ablationF1(b, func(c *core.Config) { c.Learner.MaxSuffixLen = 1 })
}

// BenchmarkAblationWindow500ms halves the history/prediction windows.
func BenchmarkAblationWindow500ms(b *testing.B) {
	ablationF1(b, func(c *core.Config) {
		c.HistoryWindow = 500 * time.Millisecond
		c.PredictionWindow = 500 * time.Millisecond
	})
}

// BenchmarkAblationWindow2s doubles the history/prediction windows.
func BenchmarkAblationWindow2s(b *testing.B) {
	ablationF1(b, func(c *core.Config) {
		c.HistoryWindow = 2 * time.Second
		c.PredictionWindow = 2 * time.Second
	})
}

// BenchmarkPublicAPI exercises the facade end to end, keeping the
// documented quick-start path honest.
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, err := repro.Drive(repro.DriveConfig{
			Carrier:      repro.OpX(),
			Arch:         repro.ArchNSA,
			RouteKind:    repro.RouteCityLoop,
			RouteLengthM: 2000,
			SpeedMPS:     8.3,
			Seed:         int64(i + 1),
			TopoOpts:     repro.TopologyOptions{CityDensity: 0.7},
		})
		if err != nil {
			b.Fatal(err)
		}
		prog, err := repro.NewPrognos(repro.PrognosConfig{
			EventConfigs:       repro.EventConfigs("OpX", repro.ArchNSA),
			Arch:               repro.ArchNSA,
			UseReportPredictor: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		repro.Replay(prog, log)
	}
}
